package ops

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/record"
)

// ScanExec is the single physical implementation of Scan.
type ScanExec struct {
	// Source is the dataset to read.
	Source dataset.Source
	// Parts is the partition fan-out resolved for this scan (0 = engine
	// default): when > 1 and the source is partitionable, the pipelined
	// executor opens that many independent range readers. The optimizer
	// stamps it from Options.Partitions so cached plans keep their
	// fan-out.
	Parts int
	// Workers is the cluster worker-pool size the plan was optimized for
	// (0 = no cluster). Partitions scatter across at most this many
	// machines, so pipelined time estimates clamp their effective
	// concurrency to it — with 8 partitions on 2 workers, each worker
	// executes 4 partitions serially. The optimizer stamps it from
	// Options.ClusterWorkers.
	Workers int
}

// ID implements Physical.
func (s *ScanExec) ID() string { return fmt.Sprintf("scan(%s)", s.Source.Name()) }

// Kind implements Physical.
func (s *ScanExec) Kind() string { return "scan" }

// Streamable implements Streamer. The pipelined executor runs the scan once
// as the pipeline source and chunks its output into batches.
func (s *ScanExec) Streamable() bool { return true }

// Estimate implements Physical. Scan sets the initial cardinality; the
// optimizer pre-populates in.Cardinality/AvgTokens from the source, so the
// estimate passes through. TimeSec is the sequential model — partition
// fan-out only shortens the pipelined estimate, which divides the
// streamable prefix by the effective fan-out (see optimizer).
func (s *ScanExec) Estimate(in Estimate) Estimate {
	out := in
	if out.Quality == 0 {
		out.Quality = 1
	}
	out.TimeSec += in.Cardinality * cheapOpSecs
	return out
}

// Execute implements Physical.
func (s *ScanExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	if len(in) != 0 {
		return nil, fmt.Errorf("ops: scan received %d input records", len(in))
	}
	recs, err := s.Source.Records()
	if err != nil {
		return nil, err
	}
	ctx.Stats.noteBatch(ctx.curOp, s.ID(), s.Kind(), 0, len(recs))
	return recs, nil
}

// StreamExecute implements BatchStreamer: when the dataset supports
// incremental iteration (dataset.RecordIterator — e.g. a file-backed
// NDJSON corpus), the scan emits records batch by batch as they are read,
// so the pipeline's memory stays bounded by the batch size rather than
// the corpus size. Per-batch statistics sum to exactly what the
// materializing Execute path records.
func (s *ScanExec) StreamExecute(ctx *Ctx, batchSize int, emit func([]*record.Record) error) (bool, error) {
	it, ok := s.Source.(dataset.RecordIterator)
	if !ok {
		return false, nil
	}
	emitted, err := s.streamBatches(ctx, batchSize, emit, it.IterateRecords)
	if err != nil {
		return true, err
	}
	if emitted == 0 {
		// Keep the stats row even for an empty dataset, as Execute does.
		ctx.Stats.noteBatch(ctx.curOp, s.ID(), s.Kind(), 0, 0)
	}
	return true, nil
}

// streamBatches drives one record iteration, chunking into batches of up
// to batchSize, noting scan stats per batch — the shared loop of
// StreamExecute and StreamPartition.
func (s *ScanExec) streamBatches(ctx *Ctx, batchSize int, emit func([]*record.Record) error,
	iterate func(func(*record.Record) error) error) (int, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	buf := make([]*record.Record, 0, batchSize)
	emitted := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		ctx.Stats.noteBatch(ctx.curOp, s.ID(), s.Kind(), 0, len(buf))
		out := buf
		emitted += len(out)
		buf = make([]*record.Record, 0, batchSize)
		return emit(out)
	}
	err := iterate(func(r *record.Record) error {
		if err := ctx.Canceled(); err != nil {
			return err
		}
		buf = append(buf, r)
		if len(buf) == batchSize {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	return emitted, err
}

// PartitionHint implements PartitionHinter.
func (s *ScanExec) PartitionHint() int { return s.Parts }

// ClusterWorkers implements ClusterHinter.
func (s *ScanExec) ClusterWorkers() int { return s.Workers }

// PartitionPlans implements PartitionStreamer: the layout comes from the
// dataset's PartitionedSource capability (an NDJSON corpus with a
// manifest partition index). Non-partitionable sources return nil and the
// engine falls back to the single streaming reader.
func (s *ScanExec) PartitionPlans(max int) []PartitionPlan {
	ps, ok := s.Source.(dataset.PartitionedSource)
	if !ok || max < 2 {
		return nil
	}
	layout := ps.PartitionLayout(max)
	if len(layout) < 2 {
		return nil
	}
	plans := make([]PartitionPlan, len(layout))
	for i, docs := range layout {
		plans[i] = PartitionPlan{Part: i, Docs: docs}
	}
	return plans
}

// StreamPartition implements PartitionStreamer: one independent range
// reader per partition, batched exactly like StreamExecute. Per-batch
// statistics across all partitions sum to what the materializing Execute
// path records.
func (s *ScanExec) StreamPartition(ctx *Ctx, parts, part, batchSize int, emit func([]*record.Record) error) error {
	ps, ok := s.Source.(dataset.PartitionedSource)
	if !ok {
		return fmt.Errorf("ops: scan source %s is not partitionable", s.Source.Name())
	}
	_, err := s.streamBatches(ctx, batchSize, emit, func(yield func(*record.Record) error) error {
		return ps.IteratePartition(parts, part, yield)
	})
	return err
}

// UDFFilterExec evaluates a Go predicate; zero LLM cost, perfect quality.
type UDFFilterExec struct {
	// Filter is the logical operator (UDF must be non-nil).
	Filter *Filter
}

// ID implements Physical.
func (u *UDFFilterExec) ID() string {
	name := u.Filter.UDFName
	if name == "" {
		name = "udf"
	}
	return fmt.Sprintf("udf-filter(%s)", name)
}

// Kind implements Physical.
func (u *UDFFilterExec) Kind() string { return "filter" }

// Streamable implements Streamer: the UDF judges records independently.
func (u *UDFFilterExec) Streamable() bool { return true }

// PreferredParallelism implements ParallelHinter: a UDF filter is pure Go
// with no LLM latency to overlap, so one worker suffices.
func (u *UDFFilterExec) PreferredParallelism(int) int { return 1 }

// Estimate implements Physical. Default selectivity 0.5.
func (u *UDFFilterExec) Estimate(in Estimate) Estimate {
	return estimateCheap(in, in.Cardinality*0.5)
}

// Execute implements Physical.
func (u *UDFFilterExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	var out []*record.Record
	for _, r := range in {
		keep, err := u.Filter.UDF(r)
		if err != nil {
			return nil, fmt.Errorf("ops: udf filter: %w", err)
		}
		if keep {
			out = append(out, r)
		}
	}
	ctx.Stats.noteBatch(ctx.curOp, u.ID(), u.Kind(), len(in), len(out))
	return out, nil
}

// ProjectExec is the physical Project.
type ProjectExec struct {
	// Project is the logical operator.
	Project *Project
}

// ID implements Physical.
func (p *ProjectExec) ID() string { return p.Project.Describe() }

// Kind implements Physical.
func (p *ProjectExec) Kind() string { return "project" }

// Streamable implements Streamer: projection is per-record.
func (p *ProjectExec) Streamable() bool { return true }

// PreferredParallelism implements ParallelHinter: projection is pure CPU.
func (p *ProjectExec) PreferredParallelism(int) int { return 1 }

// Estimate implements Physical.
func (p *ProjectExec) Estimate(in Estimate) Estimate {
	out := estimateCheap(in, in.Cardinality)
	// Projection shrinks records proportionally to dropped fields; a
	// rough 50% default keeps downstream token estimates sane.
	out.AvgTokens = in.AvgTokens * 0.5
	return out
}

// Execute implements Physical.
func (p *ProjectExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	out := make([]*record.Record, 0, len(in))
	for _, r := range in {
		pr, err := r.Project(p.Project.Fields...)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	ctx.Stats.noteBatch(ctx.curOp, p.ID(), p.Kind(), len(in), len(out))
	return out, nil
}

// LimitExec is the physical Limit.
type LimitExec struct {
	// Limit is the logical operator.
	Limit *Limit
}

// ID implements Physical.
func (l *LimitExec) ID() string { return l.Limit.Describe() }

// Kind implements Physical.
func (l *LimitExec) Kind() string { return "limit" }

// Estimate implements Physical.
func (l *LimitExec) Estimate(in Estimate) Estimate {
	return estimateCheap(in, math.Min(in.Cardinality, float64(l.Limit.N)))
}

// Execute implements Physical.
func (l *LimitExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	out := in
	if len(out) > l.Limit.N {
		out = out[:l.Limit.N]
	}
	ctx.Stats.noteBatch(ctx.curOp, l.ID(), l.Kind(), len(in), len(out))
	return out, nil
}

// DistinctExec is the physical Distinct.
type DistinctExec struct {
	// Distinct is the logical operator.
	Distinct *Distinct
}

// ID implements Physical.
func (d *DistinctExec) ID() string { return d.Distinct.Describe() }

// Kind implements Physical.
func (d *DistinctExec) Kind() string { return "distinct" }

// Estimate implements Physical. Default duplicate rate 20%.
func (d *DistinctExec) Estimate(in Estimate) Estimate {
	return estimateCheap(in, in.Cardinality*0.8)
}

// Execute implements Physical.
func (d *DistinctExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	seen := map[string]bool{}
	var out []*record.Record
	for _, r := range in {
		k := dedupKey(r, d.Distinct.Fields)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	ctx.Stats.noteBatch(ctx.curOp, d.ID(), d.Kind(), len(in), len(out))
	return out, nil
}

// AggregateExec is the physical Aggregate.
type AggregateExec struct {
	// Aggregate is the logical operator.
	Aggregate *Aggregate
}

// ID implements Physical.
func (a *AggregateExec) ID() string { return a.Aggregate.Describe() }

// Kind implements Physical.
func (a *AggregateExec) Kind() string { return "aggregate" }

// Estimate implements Physical.
func (a *AggregateExec) Estimate(in Estimate) Estimate {
	out := estimateCheap(in, 1)
	out.AvgTokens = 8
	return out
}

// Execute implements Physical.
func (a *AggregateExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	val, err := aggregate(a.Aggregate.Func, a.Aggregate.Field, in)
	if err != nil {
		return nil, err
	}
	out, err := record.New(aggSchema(a.Aggregate.Func, a.Aggregate.Field), map[string]any{
		"value": val, "count": len(in),
	})
	if err != nil {
		return nil, err
	}
	ctx.Stats.noteBatch(ctx.curOp, a.ID(), a.Kind(), len(in), 1)
	return []*record.Record{out}, nil
}

func aggregate(f AggFunc, field string, in []*record.Record) (float64, error) {
	if f == AggCount {
		return float64(len(in)), nil
	}
	if len(in) == 0 {
		return 0, nil
	}
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	for _, r := range in {
		v := r.GetFloat(field)
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	switch f {
	case AggSum:
		return sum, nil
	case AggAvg:
		return sum / float64(len(in)), nil
	case AggMin:
		return min, nil
	case AggMax:
		return max, nil
	default:
		return 0, fmt.Errorf("ops: unknown aggregate %v", f)
	}
}

// GroupByExec is the physical GroupBy.
type GroupByExec struct {
	// GroupBy is the logical operator.
	GroupBy *GroupBy
}

// ID implements Physical.
func (g *GroupByExec) ID() string { return g.GroupBy.Describe() }

// Kind implements Physical.
func (g *GroupByExec) Kind() string { return "groupby" }

// Estimate implements Physical. Default 10 groups (capped by input).
func (g *GroupByExec) Estimate(in Estimate) Estimate {
	return estimateCheap(in, math.Min(in.Cardinality, 10))
}

// Execute implements Physical.
func (g *GroupByExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	if len(in) == 0 {
		ctx.Stats.noteBatch(ctx.curOp, g.ID(), g.Kind(), 0, 0)
		return nil, nil
	}
	outSchema, err := g.GroupBy.OutputSchema(in[0].Schema())
	if err != nil {
		return nil, err
	}
	groups := map[string][]*record.Record{}
	var order []string
	for _, r := range in {
		k := dedupKey(r, g.GroupBy.Keys)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(order)
	var out []*record.Record
	for _, k := range order {
		members := groups[k]
		val, err := aggregate(g.GroupBy.Func, g.GroupBy.Field, members)
		if err != nil {
			return nil, err
		}
		vals := map[string]any{"value": val, "count": len(members)}
		for _, key := range g.GroupBy.Keys {
			v, _ := members[0].Get(key)
			vals[key] = v
		}
		gr, err := record.New(outSchema, vals)
		if err != nil {
			return nil, err
		}
		out = append(out, gr)
	}
	ctx.Stats.noteBatch(ctx.curOp, g.ID(), g.Kind(), len(in), len(out))
	return out, nil
}

// SortExec is the physical Sort.
type SortExec struct {
	// Sort is the logical operator.
	Sort *Sort
}

// ID implements Physical.
func (s *SortExec) ID() string { return s.Sort.Describe() }

// Kind implements Physical.
func (s *SortExec) Kind() string { return "sort" }

// Estimate implements Physical.
func (s *SortExec) Estimate(in Estimate) Estimate {
	return estimateCheap(in, in.Cardinality)
}

// Execute implements Physical.
func (s *SortExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	out := make([]*record.Record, len(in))
	copy(out, in)
	field := s.Sort.Field
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		var less bool
		// Numeric when both parse as numbers, else lexicographic.
		fa, fb := a.GetFloat(field), b.GetFloat(field)
		if fa != 0 || fb != 0 || (a.GetString(field) == "0" && b.GetString(field) == "0") {
			less = fa < fb
		} else {
			less = a.GetString(field) < b.GetString(field)
		}
		if s.Sort.Descending {
			return !less
		}
		return less
	})
	ctx.Stats.noteBatch(ctx.curOp, s.ID(), s.Kind(), len(in), len(out))
	return out, nil
}
