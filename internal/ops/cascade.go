package ops

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/vector"
)

// Cascade tier names, shared with the trace/metrics layers so spans and
// counters agree on spelling.
const (
	TierPrefilter = "prefilter"
	TierVerify    = "verify"
	TierResolve   = "resolve"
)

// LSH geometry for the approximate prefilter. The calibration pass and the
// execution path MUST hash identically, so these are package constants
// rather than per-instance knobs: 16 tables of 4-bit signatures keeps
// bucket-collision recall usable even when query-document cosines are
// small (high-dimensional probes sit near-orthogonal to most documents),
// at the price of wide buckets — the recall/candidate-set trade the
// optimizer's calibration measures and prices.
const (
	CascadeLSHTables = 16
	CascadeLSHBits   = 4
	CascadeLSHSeed   = 17
)

// CascadeEmbedModel is the catalog embedding model the cascade charges for
// query embedding and sidecar-miss fallbacks.
const CascadeEmbedModel = "atlas-embed"

// DefaultResolveConfidence is the verify-tier confidence below which a
// record escalates to the resolve model when the plan does not set one.
// The oracle's confidence is calibrated so correct answers score >= 0.5
// and most mistakes score below it (see llm.Response.Confidence).
const DefaultResolveConfidence = 0.5

// CascadeEstimates carries the calibration measurements the optimizer
// attaches to a cascade candidate so Estimate can price it honestly
// instead of guessing. All rates are fractions in [0,1].
type CascadeEstimates struct {
	// KeepRate is the fraction of input records the vector prefilter
	// passes to the verify tier.
	KeepRate float64
	// EscalationRate is the fraction of verify-tier records that escalate
	// to the resolve model (confidence below threshold).
	EscalationRate float64
	// Selectivity is the overall output/input cardinality ratio.
	Selectivity float64
	// F1 is the estimated end-to-end F1 of the cascade against gold
	// labels, measured on the calibration sample with Laplace smoothing.
	F1 float64
}

// CascadeFilterExec is the semantic-index pushdown strategy for a
// natural-language filter: a vector prefilter over the corpus's embedding
// sidecar drops obvious non-matches for free, a cheap verify model judges
// the survivors, and only low-confidence verdicts escalate to the
// expensive resolve model. With a calibrated threshold most records never
// reach an LLM at all.
//
// Threshold <= 0 selects the degenerate cascade: the prefilter passes
// everything and the verify tier is bypassed, so every record goes
// straight to the resolve model. That mode issues byte-identical requests
// to LLMFilterExec{Model: ResolveModel} and therefore produces an
// identical kept set — the anchor the cascade parity tests pin down.
type CascadeFilterExec struct {
	// Filter is the logical operator.
	Filter *Filter
	// VerifyModel is the cheap model judging prefilter survivors.
	VerifyModel string
	// ResolveModel is the expensive model for low-confidence escalations
	// (and for everything in the degenerate mode).
	ResolveModel string
	// Threshold is the prefilter keep threshold on the normalized
	// similarity score CascadeScore (cosine mapped into [0,1], so any
	// real calibrated threshold is positive); <= 0 selects the
	// degenerate resolve-only mode.
	Threshold float64
	// ResolveConfidence is the verify-confidence escalation threshold
	// (0 = DefaultResolveConfidence).
	ResolveConfidence float64
	// QueryVec is the prefilter's query direction, normally the Rocchio
	// probe the optimizer learns from the calibration sample's gold
	// labels (see BuildCascadeProbe). When nil the operator falls back to
	// embedding the predicate text itself — a charged call and a much
	// weaker signal, kept for direct (un-calibrated) use.
	QueryVec []float64
	// Lookup is the corpus's embedding sidecar index. Records missing
	// from it (or a nil Lookup) fall back to charged on-line embedding.
	Lookup *corpus.EmbedIndex
	// ApproxPrefilter selects the LSH prefilter instead of exact cosine.
	ApproxPrefilter bool
	// Cal holds the optimizer's calibration measurements (nil = defaults).
	Cal *CascadeEstimates

	mu        sync.Mutex
	initErr   error
	queryVec  []float64
	queryCost float64
	queryLat  time.Duration
	lshKeep   map[uint64]bool
}

// ID implements Physical.
func (f *CascadeFilterExec) ID() string {
	mode := "exact"
	if f.ApproxPrefilter {
		mode = "lsh"
	}
	return fmt.Sprintf("cascade-filter(%s>%s, %s, t=%.3f)", f.VerifyModel, f.ResolveModel, mode, f.Threshold)
}

// Kind implements Physical.
func (f *CascadeFilterExec) Kind() string { return "filter" }

// Streamable implements Streamer: every tier judges records independently
// (the LSH keep-set is computed once from the sidecar, not from the
// batch), so any partition of the input yields the same kept set.
func (f *CascadeFilterExec) Streamable() bool { return true }

func (f *CascadeFilterExec) resolveConfidence() float64 {
	if f.ResolveConfidence > 0 {
		return f.ResolveConfidence
	}
	return DefaultResolveConfidence
}

// params returns (keepRate, escalationRate, selectivity, f1) from the
// calibration when present, else deliberately conservative defaults so an
// uncalibrated cascade never looks better than a plain filter.
func (f *CascadeFilterExec) params() (keep, esc, sel, f1 float64) {
	if f.Cal != nil {
		return f.Cal.KeepRate, f.Cal.EscalationRate, f.Cal.Selectivity, f.Cal.F1
	}
	vq := llm.MustCard(f.VerifyModel).FilterAccuracy()
	return 0.7, 0.3, 0.5, vq * 0.95
}

// Estimate implements Physical.
func (f *CascadeFilterExec) Estimate(in Estimate) Estimate {
	promptTok := int(in.AvgTokens) + llm.CountTokens(filterPrompt(f.Filter.Predicate, ""))
	const outTok = 2
	rcard := llm.MustCard(f.ResolveModel)
	out := in

	if f.Threshold <= 0 {
		// Degenerate mode prices exactly like llm-filter(ResolveModel).
		sel := 0.5
		if f.Cal != nil && f.Cal.Selectivity > 0 {
			sel = f.Cal.Selectivity
		}
		out.Cardinality = in.Cardinality * sel
		out.CostUSD += in.Cardinality * rcard.Cost(promptTok, outTok)
		out.TimeSec += in.Cardinality * rcard.Latency(promptTok, outTok).Seconds()
		out.Quality = in.Quality * rcard.FilterAccuracy()
		return out
	}

	vcard := llm.MustCard(f.VerifyModel)
	ecard := llm.MustCard(CascadeEmbedModel)
	keep, esc, sel, f1 := f.params()
	survivors := in.Cardinality * keep
	out.Cardinality = in.Cardinality * sel
	// One query embedding; sidecar lookups are free, so the prefilter
	// costs only (cheap) per-record compute.
	out.CostUSD += ecard.Cost(int(in.AvgTokens), 0)
	out.CostUSD += survivors * vcard.Cost(promptTok, outTok)
	out.CostUSD += survivors * esc * rcard.Cost(promptTok, outTok)
	out.TimeSec += in.Cardinality * cheapOpSecs
	out.TimeSec += survivors * vcard.Latency(promptTok, outTok).Seconds()
	out.TimeSec += survivors * esc * rcard.Latency(promptTok, outTok).Seconds()
	out.Quality = in.Quality * f1
	return out
}

// CascadeScore maps a cosine similarity into the prefilter's [0,1] score
// space: (1+cos)/2. Thresholding happens in this space so that a genuine
// calibrated threshold is always positive and Threshold<=0 stays an
// unambiguous sentinel for the degenerate mode (raw cosines against a
// Rocchio probe are routinely negative).
func CascadeScore(cos float64) float64 { return (1 + cos) / 2 }

// BuildCascadeProbe returns the Rocchio relevance direction for a labeled
// embedding sample: the positive centroid minus the negative centroid.
// Cosine against it separates records sharing the positive class's
// vocabulary far better than similarity to the raw predicate embedding,
// because the probe cancels the vocabulary both classes share. Returns
// nil when either class is empty.
func BuildCascadeProbe(pos, neg [][]float64) []float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return nil
	}
	dim := len(pos[0])
	probe := make([]float64, dim)
	for _, v := range pos {
		for i := range probe {
			probe[i] += v[i] / float64(len(pos))
		}
	}
	for _, v := range neg {
		for i := range probe {
			probe[i] -= v[i] / float64(len(neg))
		}
	}
	return probe
}

// ensureInit resolves the query direction once — the provided probe, or a
// charged predicate embedding as fallback — and, in LSH mode, builds the
// keep-set over the whole sidecar. Returns whether this call performed
// the initialization, so exactly one batch accounts the query embedding.
func (f *CascadeFilterExec) ensureInit(ctx *Ctx) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.initErr != nil {
		return false, f.initErr
	}
	if f.queryVec != nil {
		return false, nil
	}
	qv := f.QueryVec
	if qv == nil {
		var qresp *llm.Response
		var err error
		qv, qresp, err = ctx.Svc.Embed(CascadeEmbedModel, f.Filter.Predicate)
		if err != nil {
			f.initErr = err
			return false, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), qresp)
		f.queryCost = qresp.CostUSD
		f.queryLat = qresp.Latency
	}

	if f.ApproxPrefilter && f.Lookup != nil {
		keep, err := CascadeLSHKeepSet(f.Lookup, qv, f.Threshold)
		if err != nil {
			f.initErr = err
			return false, err
		}
		f.lshKeep = keep
	}
	f.queryVec = qv
	return true, nil
}

// CascadeLSHKeepSet builds the approximate prefilter's keep-set: the
// sidecar is indexed under the shared cascade LSH geometry, the query's
// candidate set is retrieved, and candidates are exact-rescored against
// threshold (Hit.Score is the true cosine). Keys are FilenameKey hashes.
// The optimizer's calibration pass and CascadeFilterExec.ensureInit both
// call this, so the priced keep-set and the executed keep-set are the
// same object by construction.
func CascadeLSHKeepSet(ix *corpus.EmbedIndex, query []float64, threshold float64) (map[uint64]bool, error) {
	idx, err := vector.NewLSH(ix.Dim(), CascadeLSHTables, CascadeLSHBits, CascadeLSHSeed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ix.Len(); i++ {
		_, vec := ix.At(i)
		if err := idx.Add(vector.Item{ID: int64(i), Vec: vec}); err != nil {
			return nil, err
		}
	}
	keep := make(map[uint64]bool)
	for _, h := range idx.Search(query, ix.Len()) {
		if CascadeScore(h.Score) >= threshold {
			key, _ := ix.At(int(h.ID))
			keep[key] = true
		}
	}
	return keep, nil
}

// prefilterKeep decides one record's prefilter fate. Sidecar hits are
// free; misses fall back to a charged on-line embedding. The returned
// response is non-nil only for the fallback path.
func (f *CascadeFilterExec) prefilterKeep(ctx *Ctx, r *record.Record) (bool, *llm.Response, error) {
	if f.Lookup != nil {
		name := r.GetString("filename")
		if f.ApproxPrefilter {
			if _, ok := f.Lookup.Vector(name); ok {
				return f.lshKeep[corpus.FilenameKey(name)], nil, nil
			}
		} else if vec, ok := f.Lookup.Vector(name); ok {
			return CascadeScore(vector.Cosine(f.queryVec, vec)) >= f.Threshold, nil, nil
		}
	}
	vec, resp, err := ctx.Svc.Embed(CascadeEmbedModel, r.Text())
	if err != nil {
		return false, nil, err
	}
	return CascadeScore(vector.Cosine(f.queryVec, vec)) >= f.Threshold, resp, nil
}

// filterReq builds the completion request for one tier model — the same
// request LLMFilterExec would issue, which is what makes the degenerate
// mode byte-identical to the plain filter.
func (f *CascadeFilterExec) filterReq(model string, r *record.Record) llm.Request {
	return FilterRequest(model, f.Filter.Predicate, r)
}

// Execute implements Physical.
func (f *CascadeFilterExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	if f.Threshold <= 0 {
		return f.executeDegenerate(ctx, in)
	}
	justInit, err := f.ensureInit(ctx)
	if err != nil {
		return nil, err
	}

	// Tier 1: vector prefilter over the sidecar.
	pre := TierStat{Tier: TierPrefilter, In: len(in)}
	var preLats []time.Duration
	if justInit && f.QueryVec == nil {
		// Only the predicate-embedding fallback is a charged call; a
		// calibration-built probe costs nothing at execution time.
		pre.LLMCalls++
		pre.CostUSD += f.queryCost
		preLats = append(preLats, f.queryLat)
	}
	keep := make([]bool, len(in))
	var surv []int
	for i, r := range in {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		ok, resp, err := f.prefilterKeep(ctx, r)
		if err != nil {
			return nil, err
		}
		if resp != nil {
			ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
			pre.LLMCalls++
			pre.CostUSD += resp.CostUSD
			preLats = append(preLats, resp.Latency)
		}
		if ok {
			surv = append(surv, i)
		}
	}
	pre.Passed = len(surv)
	pre.Dropped = len(in) - len(surv)
	pre.Time = advanceForCalls(ctx, preLats)

	// Tier 2: cheap verify model over the survivors; low-confidence
	// verdicts escalate rather than settle.
	ver := TierStat{Tier: TierVerify, In: len(surv)}
	survRecs := make([]*record.Record, len(surv))
	for j, i := range surv {
		survRecs[j] = in[i]
	}
	type vres struct {
		keep, escalate bool
		cost           float64
		latency        time.Duration
	}
	vresults, err := runParallel(ctx, survRecs, func(r *record.Record) (vres, error) {
		resp, err := ctx.Client.Complete(f.filterReq(f.VerifyModel, r))
		if err != nil {
			return vres{}, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
		return vres{
			keep:     resp.Decision,
			escalate: resp.Confidence < f.resolveConfidence(),
			cost:     resp.CostUSD,
			latency:  resp.Latency,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var esc []int
	verLats := make([]time.Duration, 0, len(vresults))
	for j, v := range vresults {
		ver.LLMCalls++
		ver.CostUSD += v.cost
		verLats = append(verLats, v.latency)
		switch {
		case v.escalate:
			esc = append(esc, surv[j])
			ver.Passed++
		case v.keep:
			keep[surv[j]] = true
			ver.Emitted++
		default:
			ver.Dropped++
		}
	}
	ver.Time = advanceForCalls(ctx, verLats)

	// Tier 3: resolve model settles the escalations.
	res := TierStat{Tier: TierResolve, In: len(esc)}
	escRecs := make([]*record.Record, len(esc))
	for j, i := range esc {
		escRecs[j] = in[i]
	}
	type rres struct {
		keep    bool
		cost    float64
		latency time.Duration
	}
	rresults, err := runParallel(ctx, escRecs, func(r *record.Record) (rres, error) {
		resp, err := ctx.Client.Complete(f.filterReq(f.ResolveModel, r))
		if err != nil {
			return rres{}, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
		return rres{keep: resp.Decision, cost: resp.CostUSD, latency: resp.Latency}, nil
	})
	if err != nil {
		return nil, err
	}
	resLats := make([]time.Duration, 0, len(rresults))
	for j, v := range rresults {
		res.LLMCalls++
		res.CostUSD += v.cost
		resLats = append(resLats, v.latency)
		if v.keep {
			keep[esc[j]] = true
			res.Emitted++
		} else {
			res.Dropped++
		}
	}
	res.Time = advanceForCalls(ctx, resLats)

	var out []*record.Record
	for i, r := range in {
		if keep[i] {
			out = append(out, r)
		}
	}
	ctx.Stats.noteTier(ctx.curOp, f.ID(), f.Kind(), pre)
	ctx.Stats.noteTier(ctx.curOp, f.ID(), f.Kind(), ver)
	ctx.Stats.noteTier(ctx.curOp, f.ID(), f.Kind(), res)
	ctx.Stats.noteTime(ctx.curOp, f.ID(), f.Kind(), pre.Time+ver.Time+res.Time)
	ctx.Stats.noteBatch(ctx.curOp, f.ID(), f.Kind(), len(in), len(out))
	return out, nil
}

// executeDegenerate is the Threshold<=0 path: prefilter passes everything
// untouched and the verify tier is bypassed, so the resolve model judges
// every record with exactly the requests LLMFilterExec would issue.
func (f *CascadeFilterExec) executeDegenerate(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	pre := TierStat{Tier: TierPrefilter, In: len(in), Passed: len(in)}
	res := TierStat{Tier: TierResolve, In: len(in)}
	type rres struct {
		keep    bool
		cost    float64
		latency time.Duration
	}
	results, err := runParallel(ctx, in, func(r *record.Record) (rres, error) {
		resp, err := ctx.Client.Complete(f.filterReq(f.ResolveModel, r))
		if err != nil {
			return rres{}, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
		return rres{keep: resp.Decision, cost: resp.CostUSD, latency: resp.Latency}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*record.Record
	latencies := make([]time.Duration, 0, len(results))
	for i, v := range results {
		res.LLMCalls++
		res.CostUSD += v.cost
		latencies = append(latencies, v.latency)
		if v.keep {
			out = append(out, in[i])
			res.Emitted++
		} else {
			res.Dropped++
		}
	}
	res.Time = advanceForCalls(ctx, latencies)
	ctx.Stats.noteTier(ctx.curOp, f.ID(), f.Kind(), pre)
	ctx.Stats.noteTier(ctx.curOp, f.ID(), f.Kind(), res)
	ctx.Stats.noteTime(ctx.curOp, f.ID(), f.Kind(), res.Time)
	ctx.Stats.noteBatch(ctx.curOp, f.ID(), f.Kind(), len(in), len(out))
	return out, nil
}
