package ops

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/vector"
)

// LLMFilterExec evaluates a natural-language predicate with one catalog
// model. One instance exists per model — these are the alternative physical
// implementations the paper describes ("a filter operation might be
// performed via different LLM models, each representing a distinct physical
// method").
type LLMFilterExec struct {
	// Filter is the logical operator.
	Filter *Filter
	// Model names the catalog model.
	Model string
	// SelEstimate overrides the default selectivity estimate; the
	// optimizer sets it after sentinel sampling. Zero means default (0.5).
	SelEstimate float64
}

// ID implements Physical.
func (f *LLMFilterExec) ID() string { return fmt.Sprintf("llm-filter(%s)", f.Model) }

// Kind implements Physical.
func (f *LLMFilterExec) Kind() string { return "filter" }

// Streamable implements Streamer: the filter judges each record
// independently, so any batch partition yields the same kept set.
func (f *LLMFilterExec) Streamable() bool { return true }

// selectivity returns the calibrated or default selectivity.
func (f *LLMFilterExec) selectivity() float64 {
	if f.SelEstimate > 0 {
		return f.SelEstimate
	}
	return 0.5
}

// Estimate implements Physical.
func (f *LLMFilterExec) Estimate(in Estimate) Estimate {
	card := llm.MustCard(f.Model)
	promptTok := in.AvgTokens + float64(llm.CountTokens(filterPrompt(f.Filter.Predicate, "")))
	outTok := 2.0
	out := in
	out.Cardinality = in.Cardinality * f.selectivity()
	out.CostUSD += in.Cardinality * card.Cost(int(promptTok), int(outTok))
	out.TimeSec += in.Cardinality * card.Latency(int(promptTok), int(outTok)).Seconds()
	out.Quality = in.Quality * card.FilterAccuracy()
	return out
}

// Execute implements Physical.
func (f *LLMFilterExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	type res struct {
		keep    bool
		latency time.Duration
	}
	results, err := runParallel(ctx, in, func(r *record.Record) (res, error) {
		resp, err := ctx.Client.Complete(FilterRequest(f.Model, f.Filter.Predicate, r))
		if err != nil {
			return res{}, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
		return res{keep: resp.Decision, latency: resp.Latency}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []*record.Record
	latencies := make([]time.Duration, 0, len(results))
	for i, r := range results {
		latencies = append(latencies, r.latency)
		if r.keep {
			out = append(out, in[i])
		}
	}
	elapsed := advanceForCalls(ctx, latencies)
	ctx.Stats.noteTime(ctx.curOp, f.ID(), f.Kind(), elapsed)
	ctx.Stats.noteBatch(ctx.curOp, f.ID(), f.Kind(), len(in), len(out))
	return out, nil
}

func filterPrompt(predicate, text string) string {
	return fmt.Sprintf(
		"You are evaluating a filter over a data record.\nCondition: %s\nRecord:\n%s\nAnswer exactly true or false.",
		predicate, text)
}

// FilterRequest builds the canonical completion request for judging a
// natural-language predicate over one record with one model. Every filter
// strategy (plain, cascade tiers, and the optimizer's cascade calibration)
// builds requests through this helper, so identical (model, predicate,
// record) triples are byte-identical requests — the property response
// caching and the cascade parity tests rely on.
func FilterRequest(model, predicate string, r *record.Record) llm.Request {
	return llm.Request{
		Model:     model,
		Task:      llm.TaskFilter,
		Prompt:    filterPrompt(predicate, r.Text()),
		Record:    r,
		Predicate: predicate,
	}
}

// EmbedFilterExec approximates a natural-language filter by embedding
// similarity: keep records whose embedding is within Threshold cosine of
// the predicate embedding. Far cheaper than an LLM filter, and lower
// quality — the optimizer's cost/quality trade-off in miniature.
type EmbedFilterExec struct {
	// Filter is the logical operator.
	Filter *Filter
	// Threshold is the cosine-similarity keep threshold. Zero selects the
	// adaptive mode: keep records whose similarity is at least the batch
	// mean, which guarantees a non-degenerate selectivity on any corpus.
	Threshold float64
	// SelEstimate is the calibrated selectivity (0 = default 0.5).
	SelEstimate float64
}

// ID implements Physical.
func (f *EmbedFilterExec) ID() string { return "embed-filter(atlas-embed)" }

// Kind implements Physical. EmbedFilterExec is deliberately NOT
// streamable: its adaptive mode thresholds on the whole batch's mean
// similarity, so partitioning the input would change the kept set.
func (f *EmbedFilterExec) Kind() string { return "filter" }

// EmbedFilterQuality is the modeled quality of embedding-similarity
// filtering relative to gold labels.
const EmbedFilterQuality = 0.72

// Estimate implements Physical.
func (f *EmbedFilterExec) Estimate(in Estimate) Estimate {
	card := llm.MustCard("atlas-embed")
	sel := f.SelEstimate
	if sel <= 0 {
		sel = 0.5
	}
	out := in
	out.Cardinality = in.Cardinality * sel
	out.CostUSD += in.Cardinality * card.Cost(int(in.AvgTokens), 0)
	out.TimeSec += in.Cardinality * card.Latency(int(in.AvgTokens), 0).Seconds()
	out.Quality = in.Quality * EmbedFilterQuality
	return out
}

// Execute implements Physical.
func (f *EmbedFilterExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	qv, qresp, err := ctx.Svc.Embed("atlas-embed", f.Filter.Predicate)
	if err != nil {
		return nil, err
	}
	ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), qresp)
	latencies := []time.Duration{qresp.Latency}
	sims := make([]float64, len(in))
	for i, r := range in {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		rv, resp, err := ctx.Svc.Embed("atlas-embed", r.Text())
		if err != nil {
			return nil, err
		}
		ctx.Stats.noteLLM(ctx.curOp, f.ID(), f.Kind(), resp)
		latencies = append(latencies, resp.Latency)
		sims[i] = llm.CosineVec(qv, rv)
	}
	threshold := f.Threshold
	if threshold <= 0 && len(in) > 0 {
		var sum float64
		for _, s := range sims {
			sum += s
		}
		threshold = sum / float64(len(sims))
	}
	var out []*record.Record
	for i, r := range in {
		// The epsilon keeps the adaptive mode non-degenerate when every
		// similarity is identical: the accumulated mean can round one ULP
		// above the common value, which would otherwise drop every record.
		if sims[i] >= threshold-1e-9 {
			out = append(out, r)
		}
	}
	elapsed := advanceForCalls(ctx, latencies)
	ctx.Stats.noteTime(ctx.curOp, f.ID(), f.Kind(), elapsed)
	ctx.Stats.noteBatch(ctx.curOp, f.ID(), f.Kind(), len(in), len(out))
	return out, nil
}

// LLMConvertExec computes a Convert with one catalog model, either bonded
// (all fields in one call) or field-at-a-time (one call per new field:
// more calls and cost, slightly better per-field quality — the classic
// Palimpzest conversion-strategy trade-off).
type LLMConvertExec struct {
	// Convert is the logical operator.
	Convert *Convert
	// Model names the catalog model.
	Model string
	// Bonded selects the all-fields-in-one-call strategy.
	Bonded bool
	// FanoutEstimate is the expected outputs per input for OneToMany
	// (0 = default 1.5). The optimizer calibrates it by sampling.
	FanoutEstimate float64
}

// ID implements Physical.
func (c *LLMConvertExec) ID() string {
	strat := "bonded"
	if !c.Bonded {
		strat = "fieldwise"
	}
	return fmt.Sprintf("llm-convert(%s, %s)", c.Model, strat)
}

// Kind implements Physical.
func (c *LLMConvertExec) Kind() string { return "convert" }

// Streamable implements Streamer: each record converts independently and
// children inherit the input order, so batches decompose cleanly.
func (c *LLMConvertExec) Streamable() bool { return true }

// FieldwiseQualityBonus is the modeled quality advantage of converting one
// field per call.
const FieldwiseQualityBonus = 0.03

func (c *LLMConvertExec) fanout() float64 {
	if c.FanoutEstimate > 0 {
		return c.FanoutEstimate
	}
	if c.Convert.Card == OneToMany {
		return 1.5
	}
	return 1
}

// Estimate implements Physical.
func (c *LLMConvertExec) Estimate(in Estimate) Estimate {
	card := llm.MustCard(c.Model)
	nFields := float64(len(c.Convert.Target.Fields()))
	if nFields == 0 {
		nFields = 1
	}
	promptTok := in.AvgTokens + 60
	outTokPerRec := 20.0 * nFields * c.fanout()
	calls := 1.0
	if !c.Bonded {
		calls = nFields
		outTokPerRec = outTokPerRec / nFields * 1.1
	}
	quality := card.ExtractAccuracy()
	if !c.Bonded {
		quality += FieldwiseQualityBonus
		if quality > 1 {
			quality = 1
		}
	}
	out := in
	out.Cardinality = in.Cardinality * c.fanout()
	out.CostUSD += in.Cardinality * calls * card.Cost(int(promptTok), int(outTokPerRec))
	out.TimeSec += in.Cardinality * calls * card.Latency(int(promptTok), int(outTokPerRec)).Seconds()
	out.Quality = in.Quality * quality
	out.AvgTokens = 20 * nFields
	return out
}

// Execute implements Physical.
func (c *LLMConvertExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	if len(in) == 0 {
		ctx.Stats.noteBatch(ctx.curOp, c.ID(), c.Kind(), 0, 0)
		return nil, nil
	}
	newFields := schema.NewFields(in[0].Schema(), c.Convert.Target)
	if len(newFields) == 0 {
		// Nothing to compute; pass records through re-typed.
		var out []*record.Record
		for _, r := range in {
			nr, err := r.Derive(c.Convert.Target, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, nr)
		}
		ctx.Stats.noteBatch(ctx.curOp, c.ID(), c.Kind(), len(in), len(out))
		return out, nil
	}

	type res struct {
		children []*record.Record
		latency  time.Duration
	}
	results, err := runParallel(ctx, in, func(r *record.Record) (res, error) {
		if c.Bonded {
			return c.convertBonded(ctx, r, newFields)
		}
		return c.convertFieldwise(ctx, r, newFields)
	})
	if err != nil {
		return nil, err
	}
	var out []*record.Record
	latencies := make([]time.Duration, 0, len(results))
	for _, r := range results {
		latencies = append(latencies, r.latency)
		out = append(out, r.children...)
	}
	elapsed := advanceForCalls(ctx, latencies)
	ctx.Stats.noteTime(ctx.curOp, c.ID(), c.Kind(), elapsed)
	ctx.Stats.noteBatch(ctx.curOp, c.ID(), c.Kind(), len(in), len(out))
	return out, nil
}

func (c *LLMConvertExec) convertBonded(ctx *Ctx, r *record.Record, fields []schema.Field) (struct {
	children []*record.Record
	latency  time.Duration
}, error) {
	type res = struct {
		children []*record.Record
		latency  time.Duration
	}
	resp, err := ctx.Client.Complete(llm.Request{
		Model:     c.Model,
		Task:      llm.TaskExtract,
		Prompt:    convertPrompt(c.Convert.Desc, fields, r.Text()),
		Record:    r,
		Fields:    fields,
		OneToMany: c.Convert.Card == OneToMany,
	})
	if err != nil {
		return res{}, err
	}
	ctx.Stats.noteLLM(ctx.curOp, c.ID(), c.Kind(), resp)
	children, err := deriveAll(r, c.Convert.Target, resp.Extractions)
	if err != nil {
		return res{}, err
	}
	return res{children: children, latency: resp.Latency}, nil
}

func (c *LLMConvertExec) convertFieldwise(ctx *Ctx, r *record.Record, fields []schema.Field) (struct {
	children []*record.Record
	latency  time.Duration
}, error) {
	type res = struct {
		children []*record.Record
		latency  time.Duration
	}
	// One call per field; entity alignment follows the first field's
	// extraction count.
	var merged []map[string]string
	var total time.Duration
	for i, f := range fields {
		resp, err := ctx.Client.Complete(llm.Request{
			Model:        c.Model,
			Task:         llm.TaskExtract,
			Prompt:       convertPrompt(c.Convert.Desc, []schema.Field{f}, r.Text()),
			Record:       r,
			Fields:       []schema.Field{f},
			OneToMany:    c.Convert.Card == OneToMany,
			QualityBoost: FieldwiseQualityBonus,
		})
		if err != nil {
			return res{}, err
		}
		ctx.Stats.noteLLM(ctx.curOp, c.ID(), c.Kind(), resp)
		total += resp.Latency
		if i == 0 {
			merged = make([]map[string]string, len(resp.Extractions))
			for j := range resp.Extractions {
				merged[j] = map[string]string{f.Name: resp.Extractions[j][f.Name]}
			}
			continue
		}
		for j := range merged {
			if j < len(resp.Extractions) {
				merged[j][f.Name] = resp.Extractions[j][f.Name]
			}
		}
	}
	children, err := deriveAll(r, c.Convert.Target, merged)
	if err != nil {
		return res{}, err
	}
	return res{children: children, latency: total}, nil
}

// deriveAll materializes extraction maps as child records.
func deriveAll(parent *record.Record, target *schema.Schema, exs []map[string]string) ([]*record.Record, error) {
	var out []*record.Record
	for _, ex := range exs {
		vals := make(map[string]any, len(ex))
		for k, v := range ex {
			if target.Has(k) {
				vals[k] = v
			}
		}
		child, err := parent.Derive(target, vals)
		if err != nil {
			// A garbled numeric value that fails coercion models a real
			// extraction failure: drop the entity rather than abort.
			continue
		}
		out = append(out, child)
	}
	return out, nil
}

func convertPrompt(desc string, fields []schema.Field, text string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extract structured data. %s\nFields:\n", desc)
	for _, f := range fields {
		fmt.Fprintf(&b, "- %s (%s): %s\n", f.Name, f.Type, f.Desc)
	}
	fmt.Fprintf(&b, "Text:\n%s\nRespond with JSON.", text)
	return b.String()
}

// RetrieveExec keeps the top-K records most similar to the query using the
// embedding model and an exact vector index.
type RetrieveExec struct {
	// Retrieve is the logical operator.
	Retrieve *Retrieve
}

// ID implements Physical.
func (r *RetrieveExec) ID() string { return fmt.Sprintf("retrieve(k=%d)", r.Retrieve.K) }

// Kind implements Physical.
func (r *RetrieveExec) Kind() string { return "retrieve" }

// RetrieveQuality is the modeled quality of embedding retrieval.
const RetrieveQuality = 0.90

// Estimate implements Physical.
func (r *RetrieveExec) Estimate(in Estimate) Estimate {
	card := llm.MustCard("atlas-embed")
	out := in
	k := float64(r.Retrieve.K)
	if k > in.Cardinality {
		k = in.Cardinality
	}
	out.Cardinality = k
	out.CostUSD += (in.Cardinality + 1) * card.Cost(int(in.AvgTokens), 0)
	out.TimeSec += (in.Cardinality + 1) * card.Latency(int(in.AvgTokens), 0).Seconds()
	out.Quality = in.Quality * RetrieveQuality
	return out
}

// Execute implements Physical.
func (r *RetrieveExec) Execute(ctx *Ctx, in []*record.Record) ([]*record.Record, error) {
	if len(in) == 0 {
		ctx.Stats.noteBatch(ctx.curOp, r.ID(), r.Kind(), 0, 0)
		return nil, nil
	}
	idx, err := vector.NewExact(llm.EmbedDim)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*record.Record, len(in))
	var latencies []time.Duration
	for _, rec := range in {
		if err := ctx.Canceled(); err != nil {
			return nil, err
		}
		vec, resp, err := ctx.Svc.Embed("atlas-embed", rec.Text())
		if err != nil {
			return nil, err
		}
		ctx.Stats.noteLLM(ctx.curOp, r.ID(), r.Kind(), resp)
		latencies = append(latencies, resp.Latency)
		if err := idx.Add(vector.Item{ID: rec.ID(), Vec: vec}); err != nil {
			return nil, err
		}
		byID[rec.ID()] = rec
	}
	qv, qresp, err := ctx.Svc.Embed("atlas-embed", r.Retrieve.Query)
	if err != nil {
		return nil, err
	}
	ctx.Stats.noteLLM(ctx.curOp, r.ID(), r.Kind(), qresp)
	latencies = append(latencies, qresp.Latency)

	hits := idx.Search(qv, r.Retrieve.K)
	out := make([]*record.Record, 0, len(hits))
	for _, h := range hits {
		out = append(out, byID[h.ID])
	}
	elapsed := advanceForCalls(ctx, latencies)
	ctx.Stats.noteTime(ctx.curOp, r.ID(), r.Kind(), elapsed)
	ctx.Stats.noteBatch(ctx.curOp, r.ID(), r.Kind(), len(in), len(out))
	return out, nil
}
