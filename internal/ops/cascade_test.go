package ops

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/schema"
)

const cascadePredicate = "The ticket is urgent and needs immediate attention"

// cascadeFixture generates a support corpus, its record set, and an
// embedding sidecar index built with the catalog embedding function (the
// same vectors `pzcorpus embed` would store).
func cascadeFixture(t *testing.T, n int) ([]*record.Record, *corpus.EmbedIndex) {
	t.Helper()
	g, err := corpus.NewGenerator(corpus.DomainSupport, n, -1, 9)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewDocsSource("support", schema.TextFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	ix := corpus.NewEmbedIndex(llm.EmbedDim)
	for _, d := range docs {
		ix.Add(d.Filename, llm.EmbedVector(d.Text))
	}
	ctx, _, _ := newCtx(t, 4)
	recs := scanAll(t, ctx, src)
	if len(recs) != n {
		t.Fatalf("scanned %d records, want %d", len(recs), n)
	}
	return recs, ix
}

// calibrateProbe mirrors the optimizer's calibration on a labeled sample:
// split the sidecar vectors by gold label, build the Rocchio probe, and
// pick the highest threshold that keeps every gold positive — so the
// prefilter costs no recall on this sample.
func calibrateProbe(t *testing.T, recs []*record.Record, ix *corpus.EmbedIndex, predicate string) ([]float64, float64) {
	t.Helper()
	var pos, neg [][]float64
	for _, r := range recs {
		v, ok := ix.Vector(r.GetString("filename"))
		if !ok {
			t.Fatalf("record %q missing from sidecar", r.GetString("filename"))
		}
		if llm.GoldFilterDecision(corpus.TruthOf(r), predicate) {
			pos = append(pos, v)
		} else {
			neg = append(neg, v)
		}
	}
	probe := BuildCascadeProbe(pos, neg)
	if probe == nil {
		t.Fatal("sample has a single class; cannot build probe")
	}
	lo := 1.0
	for _, v := range pos {
		if s := CascadeScore(llm.CosineVec(probe, v)); s < lo {
			lo = s
		}
	}
	return probe, lo - 1e-9
}

func tierByName(t *testing.T, st OpStats, name string) TierStat {
	t.Helper()
	for _, tier := range st.Tiers {
		if tier.Tier == name {
			return tier
		}
	}
	t.Fatalf("operator %s has no %q tier (tiers: %+v)", st.OpID, name, st.Tiers)
	return TierStat{}
}

func filterStats(t *testing.T, ctx *Ctx) OpStats {
	t.Helper()
	for _, st := range ctx.Stats.Ops() {
		if st.Kind == "filter" {
			return st
		}
	}
	t.Fatal("no filter operator in stats")
	return OpStats{}
}

// checkTierInvariants asserts per-tier flow conservation and tier-to-stage
// reconciliation for a cascade run.
func checkTierInvariants(t *testing.T, st OpStats) {
	t.Helper()
	var emitted int
	prevPassed := -1
	for _, tier := range st.Tiers {
		if tier.In != tier.Emitted+tier.Dropped+tier.Passed {
			t.Errorf("tier %s: In=%d != Emitted+Dropped+Passed=%d",
				tier.Tier, tier.In, tier.Emitted+tier.Dropped+tier.Passed)
		}
		if prevPassed >= 0 && tier.In != prevPassed {
			t.Errorf("tier %s: In=%d != previous tier's Passed=%d", tier.Tier, tier.In, prevPassed)
		}
		prevPassed = tier.Passed
		emitted += tier.Emitted
	}
	if len(st.Tiers) > 0 {
		if st.Tiers[0].In != st.InRecords {
			t.Errorf("first tier In=%d != stage InRecords=%d", st.Tiers[0].In, st.InRecords)
		}
		if last := st.Tiers[len(st.Tiers)-1]; last.Passed != 0 {
			t.Errorf("last tier %s passes %d records to nowhere", last.Tier, last.Passed)
		}
	}
	if emitted != st.OutRecords {
		t.Errorf("tiers emitted %d records, stage OutRecords=%d", emitted, st.OutRecords)
	}
}

// TestCascadeDegenerateMatchesPlainFilter pins the parity anchor: with
// Threshold<=0 the cascade bypasses prefilter and verify entirely and must
// keep exactly the records llm-filter(ResolveModel) keeps.
func TestCascadeDegenerateMatchesPlainFilter(t *testing.T) {
	recs, ix := cascadeFixture(t, 120)
	filter := &Filter{Predicate: cascadePredicate}

	plainCtx, _, _ := newCtx(t, 4)
	plain := &LLMFilterExec{Filter: filter, Model: "atlas-large"}
	want, err := plain.Execute(plainCtx, recs)
	if err != nil {
		t.Fatal(err)
	}

	cascCtx, _, _ := newCtx(t, 4)
	casc := &CascadeFilterExec{
		Filter:       filter,
		VerifyModel:  "atlas-medium",
		ResolveModel: "atlas-large",
		Threshold:    0,
		Lookup:       ix,
	}
	got, err := casc.Execute(cascCtx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cascade kept %d records, plain filter kept %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: cascade %q, plain %q",
				i, got[i].GetString("filename"), want[i].GetString("filename"))
		}
	}

	st := filterStats(t, cascCtx)
	checkTierInvariants(t, st)
	pre := tierByName(t, st, TierPrefilter)
	if pre.In != len(recs) || pre.Passed != len(recs) || pre.LLMCalls != 0 || pre.CostUSD != 0 {
		t.Errorf("degenerate prefilter should pass everything for free: %+v", pre)
	}
	res := tierByName(t, st, TierResolve)
	if res.In != len(recs) || res.LLMCalls != len(recs) {
		t.Errorf("degenerate resolve should judge everything: %+v", res)
	}
	for _, tier := range st.Tiers {
		if tier.Tier == TierVerify {
			t.Error("degenerate cascade must not run a verify tier")
		}
	}
}

// TestCascadeExactTiersAndCost runs the real three-tier cascade with a
// recall-preserving threshold and checks flow conservation, sidecar-only
// prefiltering (one embedding call total), output quality, and that the
// cascade is strictly cheaper than resolving every record.
func TestCascadeExactTiersAndCost(t *testing.T) {
	recs, ix := cascadeFixture(t, 150)
	filter := &Filter{Predicate: cascadePredicate}
	probe, threshold := calibrateProbe(t, recs, ix, cascadePredicate)

	cascCtx, _, _ := newCtx(t, 4)
	casc := &CascadeFilterExec{
		Filter:       filter,
		VerifyModel:  "atlas-medium",
		ResolveModel: "atlas-large",
		Threshold:    threshold,
		QueryVec:     probe,
		Lookup:       ix,
	}
	out, err := casc.Execute(cascCtx, recs)
	if err != nil {
		t.Fatal(err)
	}

	// Output must be an in-order subsequence of the input.
	j := 0
	for _, r := range out {
		for j < len(recs) && recs[j] != r {
			j++
		}
		if j == len(recs) {
			t.Fatal("cascade output is not an in-order subsequence of its input")
		}
		j++
	}

	st := filterStats(t, cascCtx)
	checkTierInvariants(t, st)
	pre := tierByName(t, st, TierPrefilter)
	if pre.LLMCalls != 0 {
		t.Errorf("prefilter made %d LLM calls; with a probe and full sidecar coverage it should make none", pre.LLMCalls)
	}
	if pre.Dropped == 0 {
		t.Error("prefilter dropped nothing; threshold calibration is broken")
	}
	ver := tierByName(t, st, TierVerify)
	if ver.In != pre.Passed || ver.LLMCalls != ver.In {
		t.Errorf("verify tier should judge every survivor once: %+v (prefilter %+v)", ver, pre)
	}
	res := tierByName(t, st, TierResolve)
	if res.In == 0 {
		t.Error("no record escalated to the resolve tier; confidence routing is broken")
	}
	if res.In >= ver.In {
		t.Errorf("resolve tier saw %d of %d verified records; escalation should be the minority",
			res.In, ver.In)
	}

	// Quality: F1 against gold labels stays high because the threshold
	// preserves sample recall and mistakes mostly escalate.
	var tp, fp, fn int
	kept := make(map[*record.Record]bool, len(out))
	for _, r := range out {
		kept[r] = true
	}
	for _, r := range recs {
		gold := llm.GoldFilterDecision(corpus.TruthOf(r), cascadePredicate)
		switch {
		case gold && kept[r]:
			tp++
		case !gold && kept[r]:
			fp++
		case gold && !kept[r]:
			fn++
		}
	}
	if tp == 0 {
		t.Fatal("cascade kept no gold-positive records")
	}
	f1 := 2 * float64(tp) / float64(2*tp+fp+fn)
	if f1 < 0.9 {
		t.Errorf("cascade F1 = %.3f, want >= 0.9 (tp=%d fp=%d fn=%d)", f1, tp, fp, fn)
	}

	// Cost: strictly cheaper than judging every record with the resolve
	// model, which is what the plain filter would do.
	plainCtx, _, _ := newCtx(t, 4)
	plain := &LLMFilterExec{Filter: filter, Model: "atlas-large"}
	if _, err := plain.Execute(plainCtx, recs); err != nil {
		t.Fatal(err)
	}
	plainCost := filterStats(t, plainCtx).CostUSD
	if st.CostUSD >= plainCost {
		t.Errorf("cascade cost %.4f not below plain filter cost %.4f", st.CostUSD, plainCost)
	}
	var tierCost float64
	for _, tier := range st.Tiers {
		tierCost += tier.CostUSD
	}
	if diff := tierCost - st.CostUSD; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("tier costs sum to %.6f, stage cost is %.6f", tierCost, st.CostUSD)
	}
}

// TestCascadeLSHModeDeterministic runs the approximate prefilter twice and
// checks the runs agree record-for-record, never out-keep the exact
// prefilter, and uphold the tier invariants.
func TestCascadeLSHModeDeterministic(t *testing.T) {
	recs, ix := cascadeFixture(t, 150)
	filter := &Filter{Predicate: cascadePredicate}
	probe, threshold := calibrateProbe(t, recs, ix, cascadePredicate)

	run := func() ([]*record.Record, OpStats) {
		ctx, _, _ := newCtx(t, 4)
		casc := &CascadeFilterExec{
			Filter:          filter,
			VerifyModel:     "atlas-small",
			ResolveModel:    "atlas-large",
			Threshold:       threshold,
			QueryVec:        probe,
			Lookup:          ix,
			ApproxPrefilter: true,
		}
		out, err := casc.Execute(ctx, recs)
		if err != nil {
			t.Fatal(err)
		}
		return out, filterStats(t, ctx)
	}
	out1, st1 := run()
	out2, st2 := run()
	if len(out1) != len(out2) {
		t.Fatalf("LSH runs disagree: %d vs %d records", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("LSH runs disagree at record %d", i)
		}
	}
	checkTierInvariants(t, st1)
	checkTierInvariants(t, st2)

	// The LSH keep-set can only miss records the exact scan keeps, never
	// add ones below threshold.
	exactSurvivors := 0
	for _, r := range recs {
		if v, ok := ix.Vector(r.GetString("filename")); ok {
			if CascadeScore(llm.CosineVec(probe, v)) >= threshold {
				exactSurvivors++
			}
		}
	}
	pre := tierByName(t, st1, TierPrefilter)
	if pre.Passed > exactSurvivors {
		t.Errorf("LSH prefilter passed %d records, exact scan passes only %d", pre.Passed, exactSurvivors)
	}
	if pre.Passed == 0 {
		t.Error("LSH prefilter passed nothing; keep-set construction is broken")
	}
}
