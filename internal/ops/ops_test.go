package ops

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/simclock"
)

// newCtx builds an execution context over a fresh service and sim clock.
func newCtx(t *testing.T, parallelism int) (*Ctx, *llm.Service, *simclock.Sim) {
	t.Helper()
	svc := llm.NewService()
	clock := simclock.NewSim()
	client, err := llm.NewRetryClient(svc, clock, 3, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return &Ctx{
		Client:      client,
		Svc:         svc,
		Clock:       clock,
		Parallelism: parallelism,
		Stats:       NewRunStats(),
	}, svc, clock
}

func biomedSource(t *testing.T) dataset.Source {
	t.Helper()
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	src, err := dataset.NewDocsSource("sigmod-demo", schema.PDFFile, docs)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

var clinical = schema.MustNew("ClinicalData", "A schema for extracting clinical data datasets from papers.",
	schema.Field{Name: "name", Type: schema.String, Desc: "The name of the clinical data dataset"},
	schema.Field{Name: "description", Type: schema.String, Desc: "A short description of the content of the dataset"},
	schema.Field{Name: "url", Type: schema.String, Desc: "The public URL where the dataset can be accessed"},
)

const demoPredicate = "The papers are about colorectal cancer"

func scanAll(t *testing.T, ctx *Ctx, src dataset.Source) []*record.Record {
	t.Helper()
	scan := &ScanExec{Source: src}
	recs, err := scan.Execute(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestValidatePlanHappyPath(t *testing.T) {
	src := biomedSource(t)
	chain := []Logical{
		&Scan{Source: src},
		&Filter{Predicate: demoPredicate},
		&Convert{Target: clinical, Desc: clinical.Doc(), Card: OneToMany},
	}
	out, err := ValidatePlan(chain)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name() != "ClinicalData" {
		t.Errorf("output schema = %s", out.Name())
	}
}

func TestValidatePlanErrors(t *testing.T) {
	src := biomedSource(t)
	cases := [][]Logical{
		{},
		{&Filter{Predicate: "x"}},
		{&Scan{Source: src}, &Scan{Source: src}},
		{&Scan{Source: src}, &Project{Fields: []string{"nope"}}},
		{&Scan{Source: src}, &Limit{N: -1}},
		{&Scan{Source: src}, &Retrieve{Query: "q", K: 0}},
		{&Scan{Source: src}, &Sort{Field: "nope"}},
		{&Scan{Source: src}, &Aggregate{Func: AggAvg, Field: "nope"}},
		{&Scan{Source: src}, &GroupBy{Keys: nil}},
		{&Scan{Source: src}, &Convert{Target: nil}},
	}
	for i, chain := range cases {
		if _, err := ValidatePlan(chain); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
	}
}

func TestPhysicalOptionsCounts(t *testing.T) {
	nModels := len(llm.CompletionModels())
	f := &Filter{Predicate: "x"}
	if got := len(f.Physical()); got != nModels+1 {
		t.Errorf("filter physical options = %d, want %d", got, nModels+1)
	}
	fu := &Filter{UDF: func(*record.Record) (bool, error) { return true, nil }}
	if got := len(fu.Physical()); got != 1 {
		t.Errorf("udf filter options = %d", got)
	}
	c := &Convert{Target: clinical, Card: OneToMany}
	if got := len(c.Physical()); got != 2*nModels {
		t.Errorf("convert options = %d, want %d", got, 2*nModels)
	}
	for _, op := range []Logical{&Project{Fields: []string{"x"}}, &Limit{N: 1}, &Distinct{}, &Aggregate{}, &GroupBy{Keys: []string{"k"}}, &Sort{Field: "f"}, &Retrieve{Query: "q", K: 1}} {
		if got := len(op.Physical()); got != 1 {
			t.Errorf("%s options = %d, want 1", op.Kind(), got)
		}
	}
}

func TestScanExec(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	if len(recs) != 11 {
		t.Fatalf("scan = %d records", len(recs))
	}
	if _, err := (&ScanExec{Source: biomedSource(t)}).Execute(ctx, recs); err == nil {
		t.Error("scan with input accepted")
	}
	st := ctx.Stats.Ops()
	if len(st) != 1 || st[0].OutRecords != 11 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLLMFilterGoldModel(t *testing.T) {
	ctx, svc, clock := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	ctx.SetCurrentOp(1)
	f := &LLMFilterExec{Filter: &Filter{Predicate: demoPredicate}, Model: "atlas-large"}
	out, err := f.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("filter kept %d, want 5", len(out))
	}
	if svc.TotalCalls() != 11 {
		t.Errorf("LLM calls = %d, want 11", svc.TotalCalls())
	}
	if clock.Elapsed() <= 0 {
		t.Error("clock did not advance")
	}
	st := ctx.Stats.Ops()
	if len(st) != 2 {
		t.Fatalf("stats ops = %d", len(st))
	}
	if st[1].LLMCalls != 11 || st[1].InRecords != 11 || st[1].OutRecords != 5 || st[1].CostUSD <= 0 {
		t.Errorf("filter stats = %+v", st[1])
	}
}

func TestLLMFilterParallelFasterThanSequential(t *testing.T) {
	run := func(par int) time.Duration {
		ctx, _, clock := newCtx(t, par)
		recs := scanAll(t, ctx, biomedSource(t))
		ctx.SetCurrentOp(1)
		f := &LLMFilterExec{Filter: &Filter{Predicate: demoPredicate}, Model: "atlas-large"}
		if _, err := f.Execute(ctx, recs); err != nil {
			t.Fatal(err)
		}
		return clock.Elapsed()
	}
	seq, par := run(1), run(8)
	if par >= seq {
		t.Errorf("parallel %v not faster than sequential %v", par, seq)
	}
}

func TestUDFFilter(t *testing.T) {
	ctx, svc, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	ctx.SetCurrentOp(1)
	f := &UDFFilterExec{Filter: &Filter{
		UDF: func(r *record.Record) (bool, error) {
			return strings.Contains(r.GetString("contents"), "colorectal"), nil
		},
		UDFName: "contains_colorectal",
	}}
	out, err := f.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) >= len(recs) {
		t.Errorf("udf kept %d of %d", len(out), len(recs))
	}
	if svc.TotalCalls() != 0 {
		t.Error("udf filter made LLM calls")
	}
}

func TestUDFFilterError(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	f := &UDFFilterExec{Filter: &Filter{UDF: func(*record.Record) (bool, error) {
		return false, fmt.Errorf("boom")
	}}}
	if _, err := f.Execute(ctx, recs); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmbedFilterCheaperThanLLM(t *testing.T) {
	ctxA, svcA, _ := newCtx(t, 1)
	recsA := scanAll(t, ctxA, biomedSource(t))
	ctxA.SetCurrentOp(1)
	ef := &EmbedFilterExec{Filter: &Filter{Predicate: demoPredicate}, Threshold: 0.20}
	if _, err := ef.Execute(ctxA, recsA); err != nil {
		t.Fatal(err)
	}
	embedCost := svcA.TotalCost()

	ctxB, svcB, _ := newCtx(t, 1)
	recsB := scanAll(t, ctxB, biomedSource(t))
	ctxB.SetCurrentOp(1)
	lf := &LLMFilterExec{Filter: &Filter{Predicate: demoPredicate}, Model: "atlas-large"}
	if _, err := lf.Execute(ctxB, recsB); err != nil {
		t.Fatal(err)
	}
	if embedCost >= svcB.TotalCost() {
		t.Errorf("embed filter cost %.6f >= llm filter cost %.6f", embedCost, svcB.TotalCost())
	}
}

func TestLLMConvertBondedExtractsSixDatasets(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	ctx.SetCurrentOp(1)
	filter := &LLMFilterExec{Filter: &Filter{Predicate: demoPredicate}, Model: "atlas-large"}
	kept, err := filter.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetCurrentOp(2)
	conv := &LLMConvertExec{
		Convert: &Convert{Target: clinical, Desc: clinical.Doc(), Card: OneToMany},
		Model:   "atlas-large", Bonded: true,
	}
	out, err := conv.Execute(ctx, kept)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("convert produced %d records, want 6 (the paper's number)", len(out))
	}
	for _, r := range out {
		if r.Schema().Name() != "ClinicalData" {
			t.Errorf("output schema = %s", r.Schema().Name())
		}
		if r.GetString("url") == "" || r.GetString("name") == "" {
			t.Errorf("incomplete extraction: %s", r)
		}
		if len(r.Parents()) != 1 {
			t.Errorf("lineage missing: %v", r.Parents())
		}
	}
}

func TestLLMConvertOneToOne(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 4, IndemnificationRate: 0.5, Seed: 3})
	src, _ := dataset.NewDocsSource("legal", schema.TextFile, docs)
	recs := scanAll(t, ctx, src)
	target := schema.MustNew("Parties", "Contract parties.",
		schema.Field{Name: "party_a", Type: schema.String, Desc: "First party"},
		schema.Field{Name: "effective_date", Type: schema.String, Desc: "Effective date"},
	)
	ctx.SetCurrentOp(1)
	conv := &LLMConvertExec{Convert: &Convert{Target: target, Card: OneToOne}, Model: "atlas-large", Bonded: true}
	out, err := conv.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("one-to-one produced %d from 4", len(out))
	}
	for i, r := range out {
		truth := corpus.TruthOf(recs[i])
		if got := r.GetString("party_a"); got != truth.Fields["party_a"] {
			t.Errorf("record %d: party_a = %q, want %q", i, got, truth.Fields["party_a"])
		}
	}
}

func TestLLMConvertFieldwiseCostsMore(t *testing.T) {
	runCost := func(bonded bool) float64 {
		ctx, svc, _ := newCtx(t, 1)
		recs := scanAll(t, ctx, biomedSource(t))
		ctx.SetCurrentOp(1)
		conv := &LLMConvertExec{Convert: &Convert{Target: clinical, Card: OneToMany}, Model: "atlas-medium", Bonded: bonded}
		if _, err := conv.Execute(ctx, recs[:4]); err != nil {
			t.Fatal(err)
		}
		return svc.TotalCost()
	}
	if b, fw := runCost(true), runCost(false); fw <= b {
		t.Errorf("fieldwise cost %.6f <= bonded cost %.6f", fw, b)
	}
}

func TestConvertNoNewFieldsPassesThrough(t *testing.T) {
	ctx, svc, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	ctx.SetCurrentOp(1)
	// Target is a subset of PDFFile fields: nothing to compute.
	sub, _ := schema.PDFFile.Project("filename")
	conv := &LLMConvertExec{Convert: &Convert{Target: sub, Card: OneToOne}, Model: "atlas-large", Bonded: true}
	out, err := conv.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(recs) {
		t.Fatalf("passthrough produced %d", len(out))
	}
	if svc.TotalCalls() != 0 {
		t.Error("passthrough made LLM calls")
	}
}

func TestProjectLimitDistinctSort(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))

	ctx.SetCurrentOp(1)
	proj, err := (&ProjectExec{Project: &Project{Fields: []string{"filename"}}}).Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if proj[0].Schema().Len() != 1 {
		t.Errorf("projected schema len = %d", proj[0].Schema().Len())
	}

	ctx.SetCurrentOp(2)
	lim, err := (&LimitExec{Limit: &Limit{N: 3}}).Execute(ctx, proj)
	if err != nil || len(lim) != 3 {
		t.Fatalf("limit = %d, %v", len(lim), err)
	}

	ctx.SetCurrentOp(3)
	dup := append(append([]*record.Record{}, lim...), lim[0].Clone())
	dis, err := (&DistinctExec{Distinct: &Distinct{Fields: []string{"filename"}}}).Execute(ctx, dup)
	if err != nil || len(dis) != 3 {
		t.Fatalf("distinct = %d, %v", len(dis), err)
	}

	ctx.SetCurrentOp(4)
	sorted, err := (&SortExec{Sort: &Sort{Field: "filename"}}).Execute(ctx, dis)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].GetString("filename") > sorted[i].GetString("filename") {
			t.Error("not sorted ascending")
		}
	}
	sortedDesc, err := (&SortExec{Sort: &Sort{Field: "filename", Descending: true}}).Execute(ctx, dis)
	if err != nil {
		t.Fatal(err)
	}
	if sortedDesc[0].GetString("filename") != sorted[len(sorted)-1].GetString("filename") {
		t.Error("descending sort wrong")
	}
}

func TestAggregateExec(t *testing.T) {
	s := schema.MustNew("N", "", schema.Field{Name: "v", Type: schema.Float})
	recs := []*record.Record{
		record.MustNew(s, map[string]any{"v": 1.0}),
		record.MustNew(s, map[string]any{"v": 2.0}),
		record.MustNew(s, map[string]any{"v": 3.0}),
	}
	cases := []struct {
		f    AggFunc
		want float64
	}{
		{AggCount, 3}, {AggSum, 6}, {AggAvg, 2}, {AggMin, 1}, {AggMax, 3},
	}
	for _, c := range cases {
		ctx, _, _ := newCtx(t, 1)
		out, err := (&AggregateExec{Aggregate: &Aggregate{Func: c.f, Field: "v"}}).Execute(ctx, recs)
		if err != nil || len(out) != 1 {
			t.Fatalf("%v: %v, %v", c.f, out, err)
		}
		if got := out[0].GetFloat("value"); got != c.want {
			t.Errorf("%v = %v, want %v", c.f, got, c.want)
		}
		if out[0].GetInt("count") != 3 {
			t.Errorf("%v count = %d", c.f, out[0].GetInt("count"))
		}
	}
}

func TestGroupByExec(t *testing.T) {
	s := schema.MustNew("L", "",
		schema.Field{Name: "hood", Type: schema.String},
		schema.Field{Name: "price", Type: schema.Float})
	recs := []*record.Record{
		record.MustNew(s, map[string]any{"hood": "A", "price": 100.0}),
		record.MustNew(s, map[string]any{"hood": "B", "price": 300.0}),
		record.MustNew(s, map[string]any{"hood": "A", "price": 200.0}),
	}
	ctx, _, _ := newCtx(t, 1)
	out, err := (&GroupByExec{GroupBy: &GroupBy{Keys: []string{"hood"}, Func: AggAvg, Field: "price"}}).Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	if out[0].GetString("hood") != "A" || out[0].GetFloat("value") != 150 {
		t.Errorf("group A = %v / %v", out[0].GetString("hood"), out[0].GetFloat("value"))
	}
	if out[1].GetString("hood") != "B" || out[1].GetFloat("value") != 300 {
		t.Errorf("group B wrong")
	}
	empty, err := (&GroupByExec{GroupBy: &GroupBy{Keys: []string{"hood"}}}).Execute(ctx, nil)
	if err != nil || empty != nil {
		t.Errorf("empty groupby = %v, %v", empty, err)
	}
}

func TestRetrieveExec(t *testing.T) {
	ctx, svc, _ := newCtx(t, 1)
	docs := corpus.GenerateRealEstate(corpus.DefaultRealEstate())
	src, _ := dataset.NewDocsSource("re", schema.TextFile, docs)
	recs := scanAll(t, ctx, src)
	ctx.SetCurrentOp(1)
	ret := &RetrieveExec{Retrieve: &Retrieve{Query: "modern renovated kitchen quartz countertops", K: 10}}
	out, err := ret.Execute(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("retrieve = %d", len(out))
	}
	// Retrieval should be enriched in modern listings vs the base rate
	// (35%).
	modern := 0
	for _, r := range out {
		if corpus.TruthOf(r).Labels[corpus.ModernLabel] {
			modern++
		}
	}
	if modern < 6 {
		t.Errorf("retrieved %d/10 modern listings; retrieval not better than chance", modern)
	}
	if svc.TotalCalls() != len(recs)+1 {
		t.Errorf("embed calls = %d, want %d", svc.TotalCalls(), len(recs)+1)
	}
}

func TestEstimatesDirectionallyCorrect(t *testing.T) {
	in := Estimate{Cardinality: 100, AvgTokens: 500, Quality: 1}
	large := (&LLMFilterExec{Filter: &Filter{Predicate: "p"}, Model: "atlas-large"}).Estimate(in)
	small := (&LLMFilterExec{Filter: &Filter{Predicate: "p"}, Model: "pigeon-7b"}).Estimate(in)
	if large.CostUSD <= small.CostUSD {
		t.Error("large filter should cost more")
	}
	if large.TimeSec <= small.TimeSec {
		t.Error("large filter should be slower")
	}
	if large.Quality <= small.Quality {
		t.Error("large filter should be higher quality")
	}
	if large.Cardinality != 50 {
		t.Errorf("default selectivity wrong: %v", large.Cardinality)
	}

	calib := &LLMFilterExec{Filter: &Filter{Predicate: "p"}, Model: "atlas-large", SelEstimate: 0.1}
	if got := calib.Estimate(in).Cardinality; got != 10 {
		t.Errorf("calibrated cardinality = %v", got)
	}

	conv := &Convert{Target: clinical, Card: OneToMany}
	bonded := (&LLMConvertExec{Convert: conv, Model: "atlas-medium", Bonded: true}).Estimate(in)
	fieldwise := (&LLMConvertExec{Convert: conv, Model: "atlas-medium", Bonded: false}).Estimate(in)
	if fieldwise.CostUSD <= bonded.CostUSD {
		t.Error("fieldwise should cost more")
	}
	if fieldwise.Quality <= bonded.Quality {
		t.Error("fieldwise should be higher quality")
	}

	lim := (&LimitExec{Limit: &Limit{N: 5}}).Estimate(in)
	if lim.Cardinality != 5 {
		t.Errorf("limit estimate = %v", lim.Cardinality)
	}
	agg := (&AggregateExec{Aggregate: &Aggregate{Func: AggCount}}).Estimate(in)
	if agg.Cardinality != 1 {
		t.Errorf("aggregate estimate = %v", agg.Cardinality)
	}
	ret := (&RetrieveExec{Retrieve: &Retrieve{Query: "q", K: 7}}).Estimate(in)
	if ret.Cardinality != 7 {
		t.Errorf("retrieve estimate = %v", ret.Cardinality)
	}
}

func TestRunStatsTotals(t *testing.T) {
	ctx, _, _ := newCtx(t, 1)
	recs := scanAll(t, ctx, biomedSource(t))
	ctx.SetCurrentOp(1)
	f := &LLMFilterExec{Filter: &Filter{Predicate: demoPredicate}, Model: "atlas-small"}
	if _, err := f.Execute(ctx, recs); err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats
	if st.TotalLLMCalls() != 11 {
		t.Errorf("TotalLLMCalls = %d", st.TotalLLMCalls())
	}
	if st.TotalCost() <= 0 || st.TotalTime() <= 0 {
		t.Errorf("totals = %v / %v", st.TotalCost(), st.TotalTime())
	}
}

func TestDescribeStrings(t *testing.T) {
	cases := []struct {
		op   Logical
		want string
	}{
		{&Filter{Predicate: "p"}, `filter("p")`},
		{&Filter{UDF: func(*record.Record) (bool, error) { return true, nil }, UDFName: "f"}, "filter(udf=f)"},
		{&Convert{Target: clinical, Card: OneToMany}, "convert(ClinicalData, cardinality=ONE_TO_MANY)"},
		{&Limit{N: 4}, "limit(4)"},
		{&Project{Fields: []string{"a", "b"}}, "project(a, b)"},
		{&Distinct{}, "distinct()"},
		{&Aggregate{Func: AggCount}, "aggregate(count)"},
		{&Aggregate{Func: AggAvg, Field: "price"}, "aggregate(avg(price))"},
		{&GroupBy{Keys: []string{"k"}, Func: AggSum, Field: "v"}, "groupby(k; sum(v))"},
		{&Sort{Field: "x", Descending: true}, "sort(x desc)"},
		{&Retrieve{Query: "q", K: 3}, `retrieve("q", k=3)`},
	}
	for _, c := range cases {
		if got := c.op.Describe(); got != c.want {
			t.Errorf("Describe = %q, want %q", got, c.want)
		}
	}
}
