package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is returned when both the in-flight slots and the wait
// queue are full; the HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: overloaded, queue full")

// Admission is the server's concurrency gate: at most maxInflight queries
// execute at once, at most maxQueue more wait for a slot, and anything
// beyond that is shed immediately. The split API (non-blocking Enter, then
// blocking Await) lets the HTTP layer make the 429 decision synchronously
// at submit time while asynchronous jobs wait for their slot in the
// background.
type Admission struct {
	slots chan struct{}

	mu       sync.Mutex
	waiting  int
	maxQueue int
}

// NewAdmission builds a gate with maxInflight execution slots (min 1) and
// a wait queue of maxQueue (0 = no queueing; beyond-capacity queries shed).
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{slots: make(chan struct{}, maxInflight), maxQueue: maxQueue}
}

// Ticket is one admitted query's reservation: holding a slot (admitted) or
// a queue position. Tickets are not safe for concurrent use; exactly one
// goroutine drives Await/Release.
type Ticket struct {
	a        *Admission
	admitted bool
	queued   bool
	done     bool
}

// Enter reserves capacity without blocking: an execution slot when one is
// free, else a queue position, else ErrOverloaded.
func (a *Admission) Enter() (*Ticket, error) {
	select {
	case a.slots <- struct{}{}:
		return &Ticket{a: a, admitted: true}, nil
	default:
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.waiting >= a.maxQueue {
		return nil, ErrOverloaded
	}
	a.waiting++
	return &Ticket{a: a, queued: true}, nil
}

// Await blocks a queued ticket until an execution slot frees up or ctx is
// canceled. Admitted tickets return immediately.
func (t *Ticket) Await(ctx context.Context) error {
	if t.admitted || t.done {
		return nil
	}
	defer func() {
		t.a.mu.Lock()
		t.a.waiting--
		t.a.mu.Unlock()
		t.queued = false
	}()
	select {
	case t.a.slots <- struct{}{}:
		t.admitted = true
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: canceled while queued: %w", ctx.Err())
	}
}

// Release returns the ticket's capacity. Idempotent.
func (t *Ticket) Release() {
	if t.done {
		return
	}
	t.done = true
	if t.queued {
		t.a.mu.Lock()
		t.a.waiting--
		t.a.mu.Unlock()
		t.queued = false
	}
	if t.admitted {
		<-t.a.slots
		t.admitted = false
	}
}

// Running reports how many execution slots are occupied.
func (a *Admission) Running() int { return len(a.slots) }

// Queued reports how many queries are waiting for a slot.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// MaxInflight returns the execution-slot capacity.
func (a *Admission) MaxInflight() int { return cap(a.slots) }

// MaxQueue returns the wait-queue capacity.
func (a *Admission) MaxQueue() int { return a.maxQueue }
