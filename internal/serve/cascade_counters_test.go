package serve

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/trace"
)

// cascadeTrace builds a trace shaped like a cascade query: one stage span
// with prefilter/verify/resolve tier children.
func cascadeTrace() *trace.Span {
	stage := &trace.Span{Kind: trace.KindStage, Name: "cascade-filter", RecordsIn: 100, RecordsOut: 28}
	stage.Add(
		&trace.Span{Kind: trace.KindTier, Name: ops.TierPrefilter, RecordsIn: 100, RecordsOut: 40},
		&trace.Span{Kind: trace.KindTier, Name: ops.TierVerify, RecordsIn: 40, RecordsOut: 30, LLMCalls: 40},
		&trace.Span{Kind: trace.KindTier, Name: ops.TierResolve, RecordsIn: 5, RecordsOut: 3, LLMCalls: 5},
	)
	root := &trace.Span{Kind: trace.KindQuery, Name: "sequential"}
	return root.Add(&trace.Span{Kind: trace.KindStage, Name: "scan"}, stage)
}

func TestAccumulateCascadeCounters(t *testing.T) {
	c := metrics.NewCounters()
	tr := cascadeTrace()
	accumulateCascadeCounters(c, tr)
	accumulateCascadeCounters(c, tr) // two cascade queries accumulate

	want := map[string]int64{
		"cascade_queries":           2,
		"cascade_prefilter_in":      200,
		"cascade_prefilter_dropped": 120,
		"cascade_verify_calls":      80,
		"cascade_resolve_calls":     10,
		// Saved = records entering the prefilter minus actual big-model
		// calls: 2 × (100 - 5).
		"cascade_big_model_calls_saved": 190,
	}
	for name, v := range want {
		if got := c.Get(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}

	// A cascade-free trace must contribute nothing to the family.
	plain := &trace.Span{Kind: trace.KindQuery, Name: "sequential"}
	plain.Add(&trace.Span{Kind: trace.KindStage, Name: "scan"},
		&trace.Span{Kind: trace.KindStage, Name: "llm-filter(atlas-large)"})
	before := c.Get("cascade_queries")
	accumulateCascadeCounters(c, plain)
	if got := c.Get("cascade_queries"); got != before {
		t.Errorf("plain trace bumped cascade_queries to %d", got)
	}
}
