package serve

import (
	"context"
	"time"

	"repro/internal/trace"
	"repro/pz"
)

// Distributor is the seam between the serving layer and the cluster
// coordinator (internal/cluster implements it; cmd/pzserve wires the two
// together). Keeping only this interface here lets serve stay free of a
// dependency on the cluster package while runJob routes partitioned
// queries through it.
type Distributor interface {
	// TryExecute attempts distributed execution of spec at the given
	// partition fan-out. ok=false with a nil error means the query is not
	// distributable (non-NDJSON dataset, no partition index, empty worker
	// pool, no record-wise prefix) and the caller should execute locally.
	// A non-nil error is either the run context's cancellation or a
	// distributed failure the caller may also resolve by running locally.
	TryExecute(ctx context.Context, pzctx *pz.Context, spec *Spec, fanout int) (*DistResult, bool, error)
	// Workers snapshots the worker pool for /metrics.
	Workers() []WorkerView
}

// DistResult is one distributed query's gathered outcome.
type DistResult struct {
	// Records are the merged output records, byte-identical (and
	// identically ordered) to a local sequential run of the same spec.
	Records []*pz.Record
	// Plan describes the scatter for display ("cluster-scatter(...)").
	Plan string
	// Elapsed is the simulated runtime under the cluster clock model:
	// workers execute their assigned partitions serially and in parallel
	// with each other, so the scatter phase costs the slowest worker's
	// total.
	Elapsed time.Duration
	// CostUSD sums LLM spend across all partitions plus the coordinator's
	// suffix execution.
	CostUSD float64
	// Workers and Partitions describe the fan-out that actually ran.
	Workers    int
	Partitions int
	// Trace is the coordinator's span tree: a query root over the
	// scatter phase (one partition span per scattered partition, each
	// embedding the executing side's own worker spans) and any local
	// suffix run.
	Trace *trace.Span
}

// WorkerView is the wire form of one registered worker in /metrics.
type WorkerView struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Failures int    `json:"failures"`
}
