package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/trace"
	"repro/pz"
)

// Config configures a Server.
type Config struct {
	// Context is the shared Palimpzest engine every query runs on. Its
	// Parallelism, caching, and sampling settings apply to all tenants.
	Context *pz.Context
	// MaxInflight bounds concurrently executing queries (default 8).
	MaxInflight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it the
	// server sheds load with 429 (default 16).
	MaxQueue int
	// PlanCacheSize bounds the cross-query plan cache (default 128).
	PlanCacheSize int
	// DefaultBudgetUSD caps every tenant's cumulative simulated spend
	// (0 = unlimited); TenantBudgets overrides per tenant.
	DefaultBudgetUSD float64
	TenantBudgets    map[string]float64
	// OnJobStart, when set, runs after a job acquires its execution slot
	// and before it executes — a test seam for holding jobs in flight.
	// The context is the job's run context (canceled on abort).
	OnJobStart func(ctx context.Context, job *Job)
	// Cluster, when set, routes queries with a partition fan-out > 1
	// through a coordinator that scatters per-partition sub-plans across
	// registered workers (see internal/cluster). Queries the coordinator
	// declines (non-partitionable dataset, empty worker pool, no
	// distributable prefix) fall back to local execution transparently,
	// as do distributed failures.
	Cluster Distributor
	// Counters optionally shares a metrics registry with other subsystems
	// (the cluster registry/coordinator), so /metrics reports one merged
	// counter view; nil allocates a private set.
	Counters *metrics.Counters
	// Histograms optionally shares a distribution registry (latency and
	// cost histograms on /metrics); nil allocates a private set.
	Histograms *metrics.Histograms
	// SlowQuerySimSec is the slow-query log threshold in simulated
	// seconds: completed queries at or above it are retained in the
	// bounded ring behind /v1/debug/slowlog. 0 disables the log.
	SlowQuerySimSec float64
	// TraceRingSize bounds the ring of recent query traces behind
	// /v1/debug/traces (default 64).
	TraceRingSize int
	// SlowLogSize bounds the slow-query ring (default 128).
	SlowLogSize int
}

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Job is one submitted query's lifecycle record.
type Job struct {
	mu     sync.Mutex
	id     string
	tenant string
	status string
	errMsg string
	result *QueryResult
	trace  *trace.Span
	cancel context.CancelFunc
	done   chan struct{}
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Tenant returns the submitting tenant.
func (j *Job) Tenant() string { return j.tenant }

// Status returns the job's current lifecycle state.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Cancel aborts the job's run context (no-op once finished).
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning(cancel context.CancelFunc) {
	j.mu.Lock()
	j.status = StatusRunning
	j.cancel = cancel
	j.mu.Unlock()
}

func (j *Job) finish(status string, result *QueryResult, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.cancel = nil
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) setTrace(t *trace.Span) {
	j.mu.Lock()
	j.trace = t
	j.mu.Unlock()
}

// Trace returns the job's query trace (nil until the job completes a
// traced execution).
func (j *Job) Trace() *trace.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// QueryResult is the wire form of a completed query.
type QueryResult struct {
	// Records is the deterministic JSON rendering of the output records
	// (see RecordsJSON) — byte-identical to a direct Context.Execute of
	// the same spec.
	Records json.RawMessage `json:"records"`
	// Count is len(Records).
	Count int `json:"count"`
	// Plan renders the chosen physical plan.
	Plan string `json:"plan"`
	// PlanCached reports whether optimization was skipped via the plan
	// cache.
	PlanCached bool `json:"plan_cached"`
	// Candidates is how many plans the optimizer considered (the cached
	// count on plan-cache hits).
	Candidates int `json:"candidates"`
	// Policy describes the selecting policy.
	Policy string `json:"policy"`
	// ElapsedSimMS is the simulated runtime in milliseconds.
	ElapsedSimMS int64 `json:"elapsed_sim_ms"`
	// CostUSD is the query's simulated LLM cost.
	CostUSD float64 `json:"cost_usd"`
}

// JobView is the wire form of a job.
type JobView struct {
	ID     string       `json:"id"`
	Tenant string       `json:"tenant"`
	Status string       `json:"status"`
	Error  string       `json:"error,omitempty"`
	Result *QueryResult `json:"result,omitempty"`
}

func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{ID: j.id, Tenant: j.tenant, Status: j.status, Error: j.errMsg, Result: j.result}
}

// Server is the concurrent query-serving subsystem: admission control in
// front of a scheduler that runs declarative pipeline specs over one
// shared pz.Context, with a cross-query plan cache and per-tenant
// accounting.
type Server struct {
	cfg      Config
	pzctx    *pz.Context
	adm      *Admission
	plans    *PlanCache
	tenants  *Accounting
	counters *metrics.Counters
	hists    *metrics.Histograms
	traces   *trace.Ring[*trace.Document]
	slowlog  *trace.Ring[SlowQueryEntry]

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int

	base     context.Context
	shutdown context.CancelFunc
	wg       sync.WaitGroup
}

// New builds a Server over a shared pz.Context.
func New(cfg Config) (*Server, error) {
	if cfg.Context == nil {
		return nil, fmt.Errorf("serve: config needs a pz.Context")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 128
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.Histograms == nil {
		cfg.Histograms = metrics.NewHistograms()
	}
	if cfg.TraceRingSize <= 0 {
		cfg.TraceRingSize = 64
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 128
	}
	if cfg.SlowQuerySimSec < 0 {
		return nil, fmt.Errorf("serve: negative slow-query threshold %v", cfg.SlowQuerySimSec)
	}
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		pzctx:    cfg.Context,
		adm:      NewAdmission(cfg.MaxInflight, cfg.MaxQueue),
		plans:    NewPlanCache(cfg.PlanCacheSize),
		tenants:  NewAccounting(cfg.DefaultBudgetUSD, cfg.TenantBudgets),
		counters: cfg.Counters,
		hists:    cfg.Histograms,
		traces:   trace.NewRing[*trace.Document](cfg.TraceRingSize),
		slowlog:  trace.NewRing[SlowQueryEntry](cfg.SlowLogSize),
		jobs:     map[string]*Job{},
		base:     base,
		shutdown: cancel,
	}, nil
}

// Close cancels every running job and waits for them to settle.
func (s *Server) Close() {
	s.shutdown()
	s.wg.Wait()
}

// PlanCache exposes plan-cache statistics (tests, metrics).
func (s *Server) PlanCache() *PlanCache { return s.plans }

// Counters exposes the serving counters (tests, metrics).
func (s *Server) Counters() *metrics.Counters { return s.counters }

// Handler returns the HTTP API:
//
//	POST /v1/query            submit a pipeline spec (async; ?wait=1 blocks)
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/trace  the job's query trace (span tree)
//	POST /v1/jobs/{id}/cancel abort a job
//	GET  /v1/debug/traces     ring of recent query traces
//	GET  /v1/debug/slowlog    slow-query log (see Config.SlowQuerySimSec)
//	GET  /metrics             Prometheus text exposition;
//	                          ?format=json keeps the JSON snapshot
//	GET  /healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// tenantOf resolves the requesting tenant from the X-PZ-Tenant header.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-PZ-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.counters.Inc("queries_total")
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse spec: %w", err))
		return
	}
	// Validate the pipeline and policy before consuming any capacity.
	ds, err := spec.Build(s.pzctx)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	policy, err := spec.ParsePolicy()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := tenantOf(r)
	if err := s.tenants.Admit(tenant); err != nil {
		s.counters.Inc("rejected_budget")
		writeError(w, http.StatusPaymentRequired, err)
		return
	}
	ticket, err := s.adm.Enter()
	if err != nil {
		s.counters.Inc("rejected_overload")
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	job := s.newJob(tenant)

	if r.URL.Query().Get("wait") != "" {
		// Synchronous: the client's connection drives cancellation.
		s.runJob(r.Context(), job, &spec, ds, policy, ticket)
		view := job.view()
		code := http.StatusOK
		if view.Status == StatusFailed {
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, view)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runJob(s.base, job, &spec, ds, policy, ticket)
	}()
	writeJSON(w, http.StatusAccepted, job.view())
}

func (s *Server) newJob(tenant string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	job := &Job{
		id:     fmt.Sprintf("job-%06d", s.seq),
		tenant: tenant,
		status: StatusQueued,
		done:   make(chan struct{}),
	}
	s.jobs[job.id] = job
	return job
}

// runJob drives one admitted query to a terminal state: wait for an
// execution slot, try the cluster coordinator for partitioned queries,
// otherwise consult the plan cache, execute with cancellation, and
// settle accounting. parent is the job's cancellation scope (the request
// context for synchronous queries, the server's base context otherwise).
func (s *Server) runJob(parent context.Context, job *Job, spec *Spec, ds *pz.Dataset, policy pz.Policy, ticket *Ticket) {
	defer ticket.Release()
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	if err := ticket.Await(ctx); err != nil {
		s.counters.Inc("queries_canceled")
		job.finish(StatusCanceled, nil, err.Error())
		return
	}
	job.setRunning(cancel)
	if s.cfg.OnJobStart != nil {
		s.cfg.OnJobStart(ctx, job)
	}

	// Fingerprint with the dataset's resolved options (partition fan-out
	// included) so queries optimized for different fan-outs never share a
	// cached plan.
	opts := s.pzctx.OptimizerOptionsFor(ds)
	if s.runDistributed(ctx, job, spec, policy, opts.Partitions) {
		return
	}
	fp := optimizer.Fingerprint(ds.Chain(), policy, opts)
	var res *pz.Result
	var err error
	plan, candidates, cached := s.plans.Get(fp)
	if cached {
		s.counters.Inc("plan_cache_hits")
		res, err = s.pzctx.ExecutePlanContext(ctx, plan, policy.Describe())
		if res != nil {
			res.Candidates = candidates
		}
		if err == nil {
			// Keep the cached plan converging: every re-optimizing run
			// folds its observed statistics back into the cache entry.
			s.plans.Put(fp, cachedPlan(res), candidates)
		}
	} else {
		s.counters.Inc("plan_cache_misses")
		res, err = s.pzctx.ExecuteContext(ctx, ds, policy)
		if err == nil {
			s.plans.Put(fp, cachedPlan(res), res.Candidates)
		}
	}
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.counters.Inc("queries_canceled")
			job.finish(StatusCanceled, nil, err.Error())
			return
		}
		s.counters.Inc("queries_failed")
		job.finish(StatusFailed, nil, err.Error())
		return
	}
	s.tenants.Charge(job.tenant, res.CostUSD)
	records, err := RecordsJSON(res.Records)
	if err != nil {
		s.counters.Inc("queries_failed")
		job.finish(StatusFailed, nil, err.Error())
		return
	}
	s.counters.Inc("queries_done")
	s.observeDone(job, res.Trace, res.Elapsed.Milliseconds(), res.CostUSD, res.Plan.String())
	job.finish(StatusDone, &QueryResult{
		Records:      records,
		Count:        len(res.Records),
		Plan:         res.Plan.String(),
		PlanCached:   cached,
		Candidates:   res.Candidates,
		Policy:       policy.Describe(),
		ElapsedSimMS: res.Elapsed.Milliseconds(),
		CostUSD:      res.CostUSD,
	}, "")
}

// observeDone records one completed query into the observability
// surfaces: latency/cost histograms, the recent-trace ring, the job's
// own trace, and (past the configured threshold) the slow-query log.
func (s *Server) observeDone(job *Job, tr *trace.Span, elapsedSimMS int64, costUSD float64, plan string) {
	simSec := float64(elapsedSimMS) / 1000
	s.hists.Observe("query_sim_seconds", metrics.LatencyBuckets, simSec)
	s.hists.Observe("query_cost_usd", metrics.CostBuckets, costUSD)
	if tr != nil {
		job.setTrace(tr)
		accumulateCascadeCounters(s.counters, tr)
		accumulateReoptCounters(s.counters, tr)
		s.traces.Push(&trace.Document{
			SchemaVersion: trace.SchemaVersion,
			JobID:         job.ID(),
			Tenant:        job.Tenant(),
			Trace:         tr,
		})
	}
	if s.cfg.SlowQuerySimSec > 0 && simSec >= s.cfg.SlowQuerySimSec {
		s.counters.Inc("slow_queries")
		s.slowlog.Push(SlowQueryEntry{
			JobID:        job.ID(),
			Tenant:       job.Tenant(),
			ElapsedSimMS: elapsedSimMS,
			CostUSD:      costUSD,
			Plan:         plan,
		})
	}
}

// accumulateCascadeCounters folds a completed query's cascade tier spans
// into the cascade_* counter family: per-tier record and call volume, and
// the headline cascade_big_model_calls_saved — records the prefilter and
// verify tiers settled without the resolve model, i.e. big-model calls a
// plain llm-filter plan would have made that the cascade skipped.
func accumulateCascadeCounters(c *metrics.Counters, tr *trace.Span) {
	tiers := tr.FindAll(trace.KindTier)
	if len(tiers) == 0 {
		return
	}
	c.Inc("cascade_queries")
	for _, tier := range tiers {
		switch tier.Name {
		case ops.TierPrefilter:
			c.Add("cascade_prefilter_in", int64(tier.RecordsIn))
			c.Add("cascade_prefilter_dropped", int64(tier.RecordsIn-tier.RecordsOut))
			c.Add("cascade_big_model_calls_saved", int64(tier.RecordsIn))
		case ops.TierVerify:
			c.Add("cascade_verify_calls", int64(tier.LLMCalls))
		case ops.TierResolve:
			c.Add("cascade_resolve_calls", int64(tier.LLMCalls))
			c.Add("cascade_big_model_calls_saved", -int64(tier.LLMCalls))
		}
	}
}

// cachedPlan picks the plan the cross-query cache should keep for a
// completed run: the re-optimization-corrected plan when the run produced
// one — so repeat queries start from observed statistics (and from the
// hot-swapped filter ordering, when one was adopted) — otherwise the
// optimizer's original choice.
func cachedPlan(res *pz.Result) *pz.Plan {
	if res.Reopt != nil && res.Reopt.CorrectedPlan != nil {
		return res.Reopt.CorrectedPlan
	}
	return res.Plan
}

// accumulateReoptCounters folds a completed query's re-optimization spans
// into the reopt_* counter family: checks performed, divergence triggers,
// and adopted mid-flight plan swaps.
func accumulateReoptCounters(c *metrics.Counters, tr *trace.Span) {
	for _, sp := range tr.FindAll(trace.KindReopt) {
		c.Inc("reopt_checks")
		if sp.Attrs["triggered"] == "true" {
			c.Inc("reopt_triggered")
		}
		if sp.Attrs["swapped"] == "true" {
			c.Inc("reopt_swaps")
		}
	}
}

// runDistributed offers a partitioned query to the cluster coordinator
// and, when the coordinator takes it, settles the job from the gathered
// result. It reports whether the job reached a terminal state: false
// sends runJob down the local execution path — either because no cluster
// is configured, the coordinator declined the query (not distributable,
// no workers), or distributed execution failed in a way local execution
// can still resolve. Only the run context's cancellation terminates the
// job from here with a non-done status.
func (s *Server) runDistributed(ctx context.Context, job *Job, spec *Spec, policy pz.Policy, fanout int) bool {
	if s.cfg.Cluster == nil || spec == nil || fanout < 2 {
		return false
	}
	dres, ok, err := s.cfg.Cluster.TryExecute(ctx, s.pzctx, spec, fanout)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.counters.Inc("queries_canceled")
			job.finish(StatusCanceled, nil, err.Error())
			return true
		}
		// A distributed failure is not a query failure: fall back to the
		// local engine, which owns the same data.
		s.counters.Inc("cluster_query_errors")
		return false
	}
	if !ok {
		return false
	}
	s.tenants.Charge(job.tenant, dres.CostUSD)
	records, err := RecordsJSON(dres.Records)
	if err != nil {
		s.counters.Inc("queries_failed")
		job.finish(StatusFailed, nil, err.Error())
		return true
	}
	s.counters.Inc("queries_done")
	s.observeDone(job, dres.Trace, dres.Elapsed.Milliseconds(), dres.CostUSD, dres.Plan)
	job.finish(StatusDone, &QueryResult{
		Records:      records,
		Count:        len(dres.Records),
		Plan:         dres.Plan,
		Policy:       policy.Describe(),
		ElapsedSimMS: dres.Elapsed.Milliseconds(),
		CostUSD:      dres.CostUSD,
	}, "")
	return true
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	job := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.lookupJob(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.view())
	}
}

// SlowQueryEntry is one slow-query log line: which job, whose query,
// and where the simulated time and money went.
type SlowQueryEntry struct {
	JobID        string  `json:"job_id"`
	Tenant       string  `json:"tenant"`
	ElapsedSimMS int64   `json:"elapsed_sim_ms"`
	CostUSD      float64 `json:"cost_usd"`
	Plan         string  `json:"plan"`
}

// handleJobTrace serves a completed job's span tree as a versioned
// trace document. 404 for unknown jobs; 409 while the job has not yet
// produced a trace (still queued/running, or finished without one).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	tr := job.Trace()
	if tr == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s has no trace (status %s)", job.ID(), job.Status()))
		return
	}
	writeJSON(w, http.StatusOK, &trace.Document{
		SchemaVersion: trace.SchemaVersion,
		JobID:         job.ID(),
		Tenant:        job.Tenant(),
		Trace:         tr,
	})
}

// handleTraces serves the ring of recent query traces, oldest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.Items()})
}

// handleSlowlog serves the bounded slow-query log, oldest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_sim_sec": s.cfg.SlowQuerySimSec,
		"entries":           s.slowlog.Items(),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	s.mu.Unlock()
	// Deterministic order: job IDs are zero-padded sequence numbers.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k-1].ID > views[k].ID; k-- {
			views[k-1], views[k] = views[k], views[k-1]
		}
	}
	writeJSON(w, http.StatusOK, views)
}

// Metrics is the /metrics?format=json payload.
type Metrics struct {
	Counters   map[string]int64                 `json:"counters"`
	Histograms map[string]metrics.HistogramView `json:"histograms,omitempty"`
	PlanCache  PlanCacheStats                   `json:"plan_cache"`
	LLMCache   *LLMCacheStats                   `json:"llm_cache,omitempty"`
	Admission  AdmissionStats                   `json:"admission"`
	Tenants    map[string]TenantUsage           `json:"tenants"`
	TotalCost  float64                          `json:"total_cost_usd"`
	Cluster    *ClusterStats                    `json:"cluster,omitempty"`
}

// ClusterStats is the cluster section of /metrics: the live worker pool.
// The scatter/retry/straggler totals live in Counters (cluster_*), which
// the coordinator shares with the server.
type ClusterStats struct {
	Workers []WorkerView `json:"workers"`
}

// LLMCacheStats mirrors llm.CacheStats for the wire.
type LLMCacheStats struct {
	Hits      int     `json:"hits"`
	Misses    int     `json:"misses"`
	Evictions int     `json:"evictions"`
	SavedUSD  float64 `json:"saved_usd"`
	Len       int     `json:"len"`
	Capacity  int     `json:"capacity"`
}

// AdmissionStats is the gate's live occupancy.
type AdmissionStats struct {
	Running     int `json:"running"`
	Queued      int `json:"queued"`
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`
}

// handleMetrics serves the Prometheus text exposition by default and
// the structured JSON snapshot under ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		m := Metrics{
			Counters:   s.counters.Snapshot(),
			Histograms: s.hists.Snapshot(),
			PlanCache:  s.plans.Stats(),
			Admission: AdmissionStats{
				Running: s.adm.Running(), Queued: s.adm.Queued(),
				MaxInflight: s.adm.MaxInflight(), MaxQueue: s.adm.MaxQueue(),
			},
			Tenants:   s.tenants.Snapshot(),
			TotalCost: s.pzctx.TotalCost(),
		}
		if cache := s.pzctx.Executor().Cache(); cache != nil {
			st := cache.Stats()
			m.LLMCache = &LLMCacheStats{
				Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
				SavedUSD: st.SavedUSD, Len: st.Len, Capacity: st.Capacity,
			}
		}
		if s.cfg.Cluster != nil {
			m.Cluster = &ClusterStats{Workers: s.cfg.Cluster.Workers()}
		}
		writeJSON(w, http.StatusOK, m)
		return
	}
	// Text exposition: counters and histograms from the registries, plus
	// the point-in-time gauges the JSON snapshot derives from subsystems.
	planStats := s.plans.Stats()
	gauges := map[string]float64{
		"admission_running":    float64(s.adm.Running()),
		"admission_queued":     float64(s.adm.Queued()),
		"plan_cache_size":      float64(planStats.Size),
		"total_cost_usd":       s.pzctx.TotalCost(),
		"slow_query_threshold": s.cfg.SlowQuerySimSec,
	}
	if cache := s.pzctx.Executor().Cache(); cache != nil {
		st := cache.Stats()
		gauges["llm_cache_hits"] = float64(st.Hits)
		gauges["llm_cache_misses"] = float64(st.Misses)
		gauges["llm_cache_saved_usd"] = st.SavedUSD
	}
	if s.cfg.Cluster != nil {
		gauges["cluster_workers_live"] = float64(len(s.cfg.Cluster.Workers()))
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	metrics.RenderProm(w, "pz", s.counters, s.hists, gauges)
}

// RecordsJSON renders records deterministically: one JSON object per
// record with the schema's fields as keys. encoding/json sorts map keys,
// so equal record sets always render to identical bytes — the property
// the serving acceptance test uses to compare against direct Execute.
func RecordsJSON(recs []*pz.Record) (json.RawMessage, error) {
	out := make([]map[string]string, len(recs))
	for i, r := range recs {
		m := make(map[string]string, len(r.Schema().Fields()))
		for _, f := range r.Schema().Fields() {
			m[f.Name] = r.GetString(f.Name)
		}
		out[i] = m
	}
	return json.Marshal(out)
}
