package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionShedsBeyondCapacity(t *testing.T) {
	a := NewAdmission(2, 1)
	t1, err := a.Enter()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Enter()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := a.Enter() // queued
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Enter(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fourth entry: %v, want ErrOverloaded", err)
	}
	if a.Running() != 2 || a.Queued() != 1 {
		t.Errorf("occupancy %d/%d", a.Running(), a.Queued())
	}

	// Releasing a running ticket lets the queued one through.
	done := make(chan error, 1)
	go func() { done <- t3.Await(context.Background()) }()
	t1.Release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if a.Running() != 2 || a.Queued() != 0 {
		t.Errorf("after hand-off: %d/%d", a.Running(), a.Queued())
	}
	t2.Release()
	t3.Release()
	t3.Release() // idempotent
	if a.Running() != 0 {
		t.Errorf("running = %d after releases", a.Running())
	}
}

func TestAdmissionAwaitCancel(t *testing.T) {
	a := NewAdmission(1, 2)
	hold, err := a.Enter()
	if err != nil {
		t.Fatal(err)
	}
	queued, err := a.Enter()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- queued.Await(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("await = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Await did not return")
	}
	queued.Release()
	if a.Queued() != 0 {
		t.Errorf("queued = %d after canceled waiter", a.Queued())
	}
	hold.Release()
	// Capacity fully restored.
	again, err := a.Enter()
	if err != nil {
		t.Fatal(err)
	}
	if !again.admitted {
		t.Error("slot not restored")
	}
	again.Release()
}
