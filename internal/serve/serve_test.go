package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/workloads"
	"repro/pz"
)

// newStreamContext builds a pz.Context with the shared streaming workload
// registered — the same records a direct-execution reference context sees.
func newStreamContext(t *testing.T, n int, cfg pz.Config) *pz.Context {
	t.Helper()
	ctx, err := pz.NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, sc, err := workloads.StreamRecords(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterRecords(workloads.StreamSourceName, sc, recs); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// streamSpec is a filter pipeline over the registered streaming workload.
func streamSpec(policy string, predicates ...string) *Spec {
	s := &Spec{Dataset: DatasetSpec{Name: workloads.StreamSourceName}, Policy: policy}
	for _, p := range predicates {
		s.Ops = append(s.Ops, OpSpec{Op: "filter", Predicate: p})
	}
	return s
}

func postQuery(t *testing.T, url string, spec *Spec, wait bool, tenant string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/v1/query"
	if wait {
		u += "?wait=1"
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-PZ-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// awaitStatus polls a job until it reaches a terminal status.
func awaitStatus(t *testing.T, url, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var view JobView
		getJSON(t, url+"/v1/jobs/"+id, &view)
		switch view.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return JobView{}
}

// TestServeConcurrentQueriesAcceptance is the serving subsystem's
// acceptance test: >= 8 concurrent queries through the HTTP API produce
// byte-identical results to direct Context.Execute, and repeat queries
// report plan-cache hits through /metrics.
func TestServeConcurrentQueriesAcceptance(t *testing.T) {
	const n = 24
	cfg := pz.Config{Parallelism: 4, EnableCache: true, CacheCapacity: 1 << 14}
	srv, err := New(Config{Context: newStreamContext(t, n, cfg), MaxInflight: 8, MaxQueue: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two distinct queries, each executed directly for reference bytes.
	specs := []*Spec{
		streamSpec("max-quality", workloads.StreamPredicates[0], workloads.StreamPredicates[1]),
		streamSpec("min-cost", workloads.StreamPredicates[2]),
	}
	wantBytes := make([][]byte, len(specs))
	for i, spec := range specs {
		ref := newStreamContext(t, n, cfg)
		ds, err := spec.Build(ref)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := spec.ParsePolicy()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Execute(ds, policy)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 {
			t.Fatal("reference run produced no records")
		}
		raw, err := RecordsJSON(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes[i] = raw
	}

	// Two waves of 8 concurrent queries each: the second wave repeats the
	// first's fingerprints, so its plans must come from the cache.
	runWave := func() {
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				which := i % len(specs)
				resp, data := postQuery(t, ts.URL, specs[which], true, "")
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				var view JobView
				if err := json.Unmarshal(data, &view); err != nil {
					errs <- err
					return
				}
				if view.Status != StatusDone || view.Result == nil {
					errs <- fmt.Errorf("query %d: %+v", i, view)
					return
				}
				if !bytes.Equal(view.Result.Records, wantBytes[which]) {
					errs <- fmt.Errorf("query %d: records differ from direct Execute:\nserve:  %s\ndirect: %s",
						i, view.Result.Records, wantBytes[which])
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
	runWave()
	if t.Failed() {
		t.FailNow()
	}
	runWave()

	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.PlanCache.Hits == 0 {
		t.Errorf("plan cache hits = 0 after repeated queries: %+v", m.PlanCache)
	}
	if m.PlanCache.Misses == 0 || m.PlanCache.Size != len(specs) {
		t.Errorf("plan cache stats: %+v", m.PlanCache)
	}
	if m.Counters["queries_done"] != 16 {
		t.Errorf("queries_done = %d, want 16", m.Counters["queries_done"])
	}
	if m.LLMCache == nil || m.LLMCache.Hits == 0 {
		t.Errorf("shared LLM cache saw no hits across queries: %+v", m.LLMCache)
	}
	if m.Tenants["default"].Requests != 16 {
		t.Errorf("tenant accounting: %+v", m.Tenants)
	}
}

// TestServeAdmissionControl: with one execution slot and a one-deep
// queue, a third concurrent query is shed with 429; releasing the slot
// drains the queue.
func TestServeAdmissionControl(t *testing.T) {
	started := make(chan string, 8)
	gate := make(chan struct{})
	srv, err := New(Config{
		Context:     newStreamContext(t, 4, pz.Config{Parallelism: 2}),
		MaxInflight: 1, MaxQueue: 1,
		OnJobStart: func(ctx context.Context, job *Job) {
			started <- job.ID()
			select {
			case <-gate:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := streamSpec("min-cost", workloads.StreamPredicates[0])

	resp1, data1 := postQuery(t, ts.URL, spec, false, "")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", resp1.StatusCode, data1)
	}
	var j1 JobView
	if err := json.Unmarshal(data1, &j1); err != nil {
		t.Fatal(err)
	}
	<-started // job 1 holds the only slot

	resp2, data2 := postQuery(t, ts.URL, spec, false, "")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", resp2.StatusCode, data2)
	}
	var j2 JobView
	if err := json.Unmarshal(data2, &j2); err != nil {
		t.Fatal(err)
	}

	resp3, data3 := postQuery(t, ts.URL, spec, false, "")
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429: %s", resp3.StatusCode, data3)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.Counters["rejected_overload"] != 1 {
		t.Errorf("rejected_overload = %d", m.Counters["rejected_overload"])
	}
	if m.Admission.Running != 1 || m.Admission.Queued != 1 {
		t.Errorf("admission occupancy: %+v", m.Admission)
	}

	close(gate)
	if v := awaitStatus(t, ts.URL, j1.ID); v.Status != StatusDone {
		t.Errorf("job 1: %+v", v)
	}
	if v := awaitStatus(t, ts.URL, j2.ID); v.Status != StatusDone {
		t.Errorf("job 2: %+v", v)
	}
}

// TestServeClientCancellation: canceling a query — by the cancel endpoint
// for a background job, or by dropping the connection of a synchronous one
// — aborts it cleanly, frees its slot, and leaves the server serving.
func TestServeClientCancellation(t *testing.T) {
	started := make(chan string, 8)
	var gateOnce sync.Once
	gate := make(chan struct{})
	srv, err := New(Config{
		Context:     newStreamContext(t, 8, pz.Config{Parallelism: 2}),
		MaxInflight: 1, MaxQueue: 4,
		OnJobStart: func(ctx context.Context, job *Job) {
			started <- job.ID()
			select {
			case <-gate:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := streamSpec("min-cost", workloads.StreamPredicates[0])

	// Background job canceled through the API.
	_, data := postQuery(t, ts.URL, spec, false, "")
	var j1 JobView
	if err := json.Unmarshal(data, &j1); err != nil {
		t.Fatal(err)
	}
	<-started
	resp, err := http.Post(ts.URL+"/v1/jobs/"+j1.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := awaitStatus(t, ts.URL, j1.ID); v.Status != StatusCanceled {
		t.Fatalf("canceled job: %+v", v)
	}

	// Synchronous query whose client disconnects mid-run.
	body, _ := json.Marshal(spec)
	cctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/v1/query?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		reqDone <- err
	}()
	id2 := <-started
	cancel()
	if err := <-reqDone; err == nil {
		t.Error("disconnected client got a response")
	}
	if v := awaitStatus(t, ts.URL, id2); v.Status != StatusCanceled {
		t.Fatalf("disconnected job: %+v", v)
	}

	// The slot is free again: a normal query still completes.
	gateOnce.Do(func() { close(gate) })
	resp4, data4 := postQuery(t, ts.URL, spec, true, "")
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel query: status %d: %s", resp4.StatusCode, data4)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.Counters["queries_canceled"] != 2 {
		t.Errorf("queries_canceled = %d, want 2", m.Counters["queries_canceled"])
	}
}

// TestServeTenantBudget: a tenant whose accumulated cost reached its
// budget is rejected with 402; other tenants are unaffected.
func TestServeTenantBudget(t *testing.T) {
	srv, err := New(Config{
		Context:       newStreamContext(t, 6, pz.Config{Parallelism: 2}),
		MaxInflight:   2,
		TenantBudgets: map[string]float64{"scrooge": 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := streamSpec("min-cost", workloads.StreamPredicates[0])

	// First query is admitted (no spend yet) and accrues cost.
	resp, data := postQuery(t, ts.URL, spec, true, "scrooge")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d: %s", resp.StatusCode, data)
	}
	resp, data = postQuery(t, ts.URL, spec, true, "scrooge")
	if resp.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("over-budget query: status %d, want 402: %s", resp.StatusCode, data)
	}
	// An unbudgeted tenant still runs.
	resp, data = postQuery(t, ts.URL, spec, true, "alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice: %d: %s", resp.StatusCode, data)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.Counters["rejected_budget"] != 1 {
		t.Errorf("rejected_budget = %d", m.Counters["rejected_budget"])
	}
	if u := m.Tenants["scrooge"]; u.Rejected != 1 || u.CostUSD <= 0 {
		t.Errorf("scrooge usage: %+v", u)
	}
}

// TestServeBadRequests: malformed specs and unknown jobs map to 4xx.
func TestServeBadRequests(t *testing.T) {
	srv, err := New(Config{Context: newStreamContext(t, 2, pz.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, &Spec{Dataset: DatasetSpec{Name: "missing"}}, true, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown dataset: %d", resp.StatusCode)
	}
	spec := streamSpec("bogus-policy", "x")
	if resp, _ := postQuery(t, ts.URL, spec, true, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad policy: %d", resp.StatusCode)
	}
	spec = streamSpec("min-cost", "x")
	spec.Ops = append(spec.Ops, OpSpec{Op: "frobnicate"})
	if resp, _ := postQuery(t, ts.URL, spec, true, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d", r.StatusCode)
	}
}
