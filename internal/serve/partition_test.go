package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workloads"
	"repro/pz"
)

// writeTicketCorpus spills an indexed support corpus to disk.
func writeTicketCorpus(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 23})
	if _, err := corpus.SaveNDJSON(path, g, 23, nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTicketContext registers the shared corpus file on a fresh pz.Context
// configured for partition-parallel scans.
func newTicketContext(t *testing.T, path string, cfg pz.Config) *pz.Context {
	t.Helper()
	ctx, err := pz.NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestServePartitionedQueriesRace drives concurrent queries against one
// shared partitioned NDJSON dataset: every query fans its scan out across
// parallel range readers over the same file, and every response must be
// byte-identical to a direct Context.Execute of the same spec. Run under
// `go test -race` (CI does) this exercises the per-partition pipelines,
// the seq-tag merge, and the shared-file range readers for data races.
func TestServePartitionedQueriesRace(t *testing.T) {
	const docs = 180
	path := writeTicketCorpus(t, docs)
	cfg := pz.Config{Parallelism: 4, Partitions: 4}

	specFor := func(partitions int) *Spec {
		return &Spec{
			Dataset:    DatasetSpec{Name: "tickets"},
			Ops:        []OpSpec{{Op: "filter", Predicate: workloads.SupportPredicate}},
			Policy:     "min-cost",
			Partitions: partitions,
		}
	}
	// Two fan-outs of the same pipeline: the server default (spec 0) and
	// an explicit per-query override — distinct plan-cache entries whose
	// results must nevertheless be byte-identical.
	specs := []*Spec{specFor(0), specFor(8)}
	wantBytes := make([][]byte, len(specs))
	for i, spec := range specs {
		ref := newTicketContext(t, path, cfg)
		ds, err := spec.Build(ref)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := spec.ParsePolicy()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Execute(ds, policy)
		if err != nil {
			t.Fatal(err)
		}
		// The filter must be selective but non-empty; exact equality with
		// the serving results is asserted below, which is what catches a
		// broken partition merge (drops, duplicates, reordering).
		if len(res.Records) == 0 || len(res.Records) >= docs {
			t.Fatalf("reference run kept %d of %d records", len(res.Records), docs)
		}
		raw, err := RecordsJSON(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes[i] = raw
	}
	if !bytes.Equal(wantBytes[0], wantBytes[1]) {
		t.Fatal("fan-out changed query results in the reference runs")
	}

	srv, err := New(Config{Context: newTicketContext(t, path, cfg), MaxInflight: 8, MaxQueue: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	runWave := func() {
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				which := i % len(specs)
				resp, data := postQuery(t, ts.URL, specs[which], true, "")
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				var view JobView
				if err := json.Unmarshal(data, &view); err != nil {
					errs <- err
					return
				}
				if view.Status != StatusDone || view.Result == nil {
					errs <- fmt.Errorf("query %d: %+v", i, view)
					return
				}
				if !bytes.Equal(view.Result.Records, wantBytes[which]) {
					errs <- fmt.Errorf("query %d: partitioned results differ from direct Execute", i)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
	runWave()
	if t.Failed() {
		t.FailNow()
	}
	runWave()

	// The two fan-outs fingerprint differently, so the cache holds one
	// plan per fan-out and the second wave hits both.
	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.PlanCache.Size != len(specs) {
		t.Errorf("plan cache holds %d plans, want %d (one per fan-out)", m.PlanCache.Size, len(specs))
	}
	if m.PlanCache.Hits == 0 {
		t.Errorf("no plan-cache hits on repeat partitioned queries: %+v", m.PlanCache)
	}
	if m.Counters["queries_done"] != 16 {
		t.Errorf("queries_done = %d, want 16", m.Counters["queries_done"])
	}
}
