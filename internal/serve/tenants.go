package serve

import (
	"fmt"
	"sync"
)

// ErrBudgetExceeded rejects a tenant whose accumulated cost reached its
// budget; the HTTP layer maps it to 402 Payment Required.
type ErrBudgetExceeded struct {
	Tenant    string
	SpentUSD  float64
	BudgetUSD float64
}

// Error implements error.
func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("serve: tenant %q over budget ($%.4f spent of $%.4f)",
		e.Tenant, e.SpentUSD, e.BudgetUSD)
}

// TenantUsage is one tenant's accounting snapshot.
type TenantUsage struct {
	// Requests counts admitted queries (whether or not they completed).
	Requests int `json:"requests"`
	// CostUSD is the accumulated simulated LLM cost of completed queries.
	CostUSD float64 `json:"cost_usd"`
	// Rejected counts budget rejections.
	Rejected int `json:"rejected"`
	// BudgetUSD is the tenant's cost ceiling (0 = unlimited).
	BudgetUSD float64 `json:"budget_usd"`
}

// Accounting tracks per-tenant usage and enforces cost budgets. Safe for
// concurrent use.
type Accounting struct {
	mu            sync.Mutex
	defaultBudget float64
	usage         map[string]*TenantUsage
}

// NewAccounting builds tenant accounting. defaultBudgetUSD caps every
// tenant without an explicit budget (0 = unlimited); budgets overrides
// per tenant.
func NewAccounting(defaultBudgetUSD float64, budgets map[string]float64) *Accounting {
	a := &Accounting{defaultBudget: defaultBudgetUSD, usage: map[string]*TenantUsage{}}
	for tenant, b := range budgets {
		a.tenant(tenant).BudgetUSD = b
	}
	return a
}

// tenant returns (creating) the named tenant's record. Callers hold no
// lock; this takes it.
func (a *Accounting) tenant(name string) *TenantUsage {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tenantLocked(name)
}

func (a *Accounting) tenantLocked(name string) *TenantUsage {
	u := a.usage[name]
	if u == nil {
		u = &TenantUsage{BudgetUSD: a.defaultBudget}
		a.usage[name] = u
	}
	return u
}

// Admit checks the tenant's budget and, when allowed, counts the request.
// A tenant at or over budget is rejected with *ErrBudgetExceeded.
func (a *Accounting) Admit(tenant string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.tenantLocked(tenant)
	if u.BudgetUSD > 0 && u.CostUSD >= u.BudgetUSD {
		u.Rejected++
		return &ErrBudgetExceeded{Tenant: tenant, SpentUSD: u.CostUSD, BudgetUSD: u.BudgetUSD}
	}
	u.Requests++
	return nil
}

// Charge adds a completed query's cost to the tenant's tab.
func (a *Accounting) Charge(tenant string, usd float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tenantLocked(tenant).CostUSD += usd
}

// Snapshot copies every tenant's usage, for the /metrics endpoint.
func (a *Accounting) Snapshot() map[string]TenantUsage {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantUsage, len(a.usage))
	for k, v := range a.usage {
		out[k] = *v
	}
	return out
}
