// Package serve is Palimpzest's query-serving subsystem: it turns the
// single-query library (pz.Context + the pipelined executor) into a
// concurrent multi-tenant engine. A Server accepts declarative pipeline
// specs over HTTP, admission-controls them (bounded in-flight queries and
// wait queue, load-shedding with 429), skips re-optimization on repeat
// queries via a cross-query plan cache keyed by canonical plan
// fingerprints, accounts per-tenant usage against cost budgets, and runs
// everything concurrently over one shared pz.Context with real
// cancellation threaded down to individual LLM calls. See
// docs/architecture.md ("Serving layer").
package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ops"
	"repro/pz"
)

// Spec is the wire form of a declarative pipeline: the JSON format
// cmd/pzrun reads from disk and cmd/pzserve accepts on /v1/query. Dataset
// resolution prefers a name already registered on the serving context;
// Dir is the local-tool escape hatch that registers a folder on first use.
type Spec struct {
	// Dataset names the input data.
	Dataset DatasetSpec `json:"dataset"`
	// Ops is the logical operator chain (scan excluded; it comes from
	// Dataset).
	Ops []OpSpec `json:"ops"`
	// Policy optionally names the optimization policy ("max-quality",
	// "min-cost", ...); empty means max-quality.
	Policy string `json:"policy,omitempty"`
	// PolicyParam parameterizes constrained policies (budget, cap, floor).
	PolicyParam float64 `json:"policy_param,omitempty"`
	// Partitions requests a partition fan-out for the scan: > 1 splits an
	// indexed NDJSON dataset across that many parallel range readers
	// (byte-identical results, merged in dataset order), 1 forces a
	// single reader, 0 defers to the server's -partitions default.
	// Non-partitionable datasets ignore the request.
	Partitions int `json:"partitions,omitempty"`
	// ReoptAfter requests adaptive mid-flight re-optimization: the engine
	// observes each re-orderable filter stage for this many batches, then
	// hot-swaps the remaining run onto a cheaper filter ordering when the
	// observed statistics diverge from the plan's estimates. 0 defers to
	// the server's -reopt-after default.
	ReoptAfter int `json:"reopt_after,omitempty"`
	// ReoptDivergence is the relative estimate error that triggers the
	// re-plan (0 defers to the server default, then to
	// optimizer.DefaultReoptDivergence).
	ReoptDivergence float64 `json:"reopt_divergence,omitempty"`
}

// DatasetSpec identifies a dataset by registered name, or by a local
// folder / NDJSON corpus file to register under that name on first use.
type DatasetSpec struct {
	// Name is the registry name.
	Name string `json:"name"`
	// Dir optionally points at a local folder to register under Name.
	Dir string `json:"dir,omitempty"`
	// File optionally points at an NDJSON corpus file (see
	// docs/howto-corpus.md) to register under Name; the engine streams
	// it without loading the corpus whole. Dir wins when both are set.
	File string `json:"file,omitempty"`
}

// OpSpec is one logical operator. Exactly the fields relevant to Op are
// set; the rest stay zero.
type OpSpec struct {
	Op           string   `json:"op"`
	Predicate    string   `json:"predicate,omitempty"`
	Schema       string   `json:"schema,omitempty"`
	Doc          string   `json:"doc,omitempty"`
	Fields       []string `json:"fields,omitempty"`
	Descriptions []string `json:"descriptions,omitempty"`
	Cardinality  string   `json:"cardinality,omitempty"`
	N            int      `json:"n,omitempty"`
	K            int      `json:"k,omitempty"`
	Query        string   `json:"query,omitempty"`
	Field        string   `json:"field,omitempty"`
	Func         string   `json:"func,omitempty"`
	Keys         []string `json:"keys,omitempty"`
	Descending   bool     `json:"descending,omitempty"`
}

// ParseSpec decodes a JSON pipeline spec, rejecting invalid fan-out
// requests at the edge (a negative partitions value is an error, not a
// silent clamp).
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("serve: parse spec: %w", err)
	}
	if s.Partitions < 0 {
		return nil, fmt.Errorf("serve: spec partitions must be >= 0, got %d", s.Partitions)
	}
	if s.ReoptAfter < 0 {
		return nil, fmt.Errorf("serve: spec reopt_after must be >= 0, got %d", s.ReoptAfter)
	}
	if s.ReoptDivergence < 0 {
		return nil, fmt.Errorf("serve: spec reopt_divergence must be >= 0, got %g", s.ReoptDivergence)
	}
	return &s, nil
}

// ParsePolicy resolves the spec's policy (defaulting to max-quality).
func (s *Spec) ParsePolicy() (pz.Policy, error) {
	name := s.Policy
	if name == "" {
		name = "max-quality"
	}
	return pz.ParsePolicy(name, s.PolicyParam)
}

// Build resolves the spec against a pz.Context: the dataset is looked up
// by registered name (registering Dir under Name on first use), and each
// operator extends the pipeline. Builder errors surface immediately.
func (s *Spec) Build(ctx *pz.Context) (*pz.Dataset, error) {
	if s.Partitions < 0 {
		// Specs constructed programmatically bypass ParseSpec; keep the
		// edge validation airtight either way.
		return nil, fmt.Errorf("serve: spec partitions must be >= 0, got %d", s.Partitions)
	}
	if s.ReoptAfter < 0 {
		return nil, fmt.Errorf("serve: spec reopt_after must be >= 0, got %d", s.ReoptAfter)
	}
	if s.ReoptDivergence < 0 {
		return nil, fmt.Errorf("serve: spec reopt_divergence must be >= 0, got %g", s.ReoptDivergence)
	}
	name := s.Dataset.Name
	if name == "" {
		name = "dataset"
	}
	ds, err := ctx.Dataset(name)
	if err != nil {
		switch {
		case s.Dataset.Dir != "":
			if _, err := ctx.RegisterDir(name, s.Dataset.Dir); err != nil {
				return nil, fmt.Errorf("serve: register %q: %w", name, err)
			}
		case s.Dataset.File != "":
			if _, err := ctx.RegisterNDJSON(name, s.Dataset.File); err != nil {
				return nil, fmt.Errorf("serve: register %q: %w", name, err)
			}
		default:
			return nil, fmt.Errorf("serve: dataset %q not registered and no dir or file given", name)
		}
		if ds, err = ctx.Dataset(name); err != nil {
			return nil, err
		}
	}
	if s.Partitions != 0 {
		ds = ds.WithPartitions(s.Partitions)
	}
	if s.ReoptAfter != 0 || s.ReoptDivergence != 0 {
		ds = ds.WithReopt(s.ReoptAfter, s.ReoptDivergence)
	}
	for i, op := range s.Ops {
		ds, err = applyOp(ds, op)
		if err != nil {
			return nil, fmt.Errorf("serve: op %d (%s): %w", i, op.Op, err)
		}
	}
	if err := ds.Err(); err != nil {
		return nil, err
	}
	if _, err := ds.OutputSchema(); err != nil {
		return nil, err
	}
	return ds, nil
}

// applyOp extends the pipeline with one spec operator.
func applyOp(ds *pz.Dataset, op OpSpec) (*pz.Dataset, error) {
	switch strings.ToLower(op.Op) {
	case "filter":
		return ds.Filter(op.Predicate), nil
	case "convert":
		name := op.Schema
		if name == "" {
			name = "Extracted"
		}
		sc, err := pz.DeriveSchema(name, op.Doc, op.Fields, op.Descriptions)
		if err != nil {
			return nil, err
		}
		card := pz.OneToOne
		if strings.EqualFold(op.Cardinality, "one_to_many") {
			card = pz.OneToMany
		}
		return ds.Convert(sc, sc.Doc(), card), nil
	case "project":
		return ds.Project(op.Fields...), nil
	case "limit":
		return ds.Limit(op.N), nil
	case "distinct":
		return ds.Distinct(op.Fields...), nil
	case "aggregate":
		f, err := ParseAgg(op.Func)
		if err != nil {
			return nil, err
		}
		return ds.Aggregate(f, op.Field), nil
	case "groupby":
		f, err := ParseAgg(op.Func)
		if err != nil {
			return nil, err
		}
		return ds.GroupBy(op.Keys, f, op.Field), nil
	case "sort":
		return ds.Sort(op.Field, op.Descending), nil
	case "retrieve":
		return ds.Retrieve(op.Query, op.K), nil
	default:
		return nil, fmt.Errorf("unknown op %q", op.Op)
	}
}

// ParseAgg resolves an aggregate function name from a spec.
func ParseAgg(name string) (pz.AggFunc, error) {
	switch strings.ToLower(name) {
	case "count", "":
		return pz.Count, nil
	case "sum":
		return pz.Sum, nil
	case "avg", "average", "mean":
		return pz.Avg, nil
	case "min":
		return pz.Min, nil
	case "max":
		return pz.Max, nil
	default:
		return pz.Count, fmt.Errorf("unknown aggregate %q", name)
	}
}

// FromChain encodes a logical chain back into its wire spec — the inverse
// of Build for chains constructed through the pz builder. UDF filters
// cannot cross the wire and return an error.
func FromChain(chain []ops.Logical, policy string, policyParam float64) (*Spec, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("serve: empty chain")
	}
	scan, ok := chain[0].(*ops.Scan)
	if !ok {
		return nil, fmt.Errorf("serve: chain must start with scan, got %s", chain[0].Kind())
	}
	spec := &Spec{
		Dataset: DatasetSpec{Name: scan.Source.Name()},
		Policy:  policy, PolicyParam: policyParam,
	}
	for _, lop := range chain[1:] {
		op, err := encodeOp(lop)
		if err != nil {
			return nil, err
		}
		spec.Ops = append(spec.Ops, op)
	}
	return spec, nil
}

func encodeOp(lop ops.Logical) (OpSpec, error) {
	switch o := lop.(type) {
	case *ops.Filter:
		if o.UDF != nil {
			return OpSpec{}, fmt.Errorf("serve: UDF filter %q cannot be encoded", o.UDFName)
		}
		return OpSpec{Op: "filter", Predicate: o.Predicate}, nil
	case *ops.Convert:
		fields := make([]string, 0, len(o.Target.Fields()))
		descs := make([]string, 0, len(o.Target.Fields()))
		for _, f := range o.Target.Fields() {
			fields = append(fields, f.Name+":"+f.Type.String())
			descs = append(descs, f.Desc)
		}
		card := ""
		if o.Card == ops.OneToMany {
			card = "one_to_many"
		}
		return OpSpec{Op: "convert", Schema: o.Target.Name(), Doc: o.Target.Doc(),
			Fields: fields, Descriptions: descs, Cardinality: card}, nil
	case *ops.Project:
		return OpSpec{Op: "project", Fields: o.Fields}, nil
	case *ops.Limit:
		return OpSpec{Op: "limit", N: o.N}, nil
	case *ops.Distinct:
		return OpSpec{Op: "distinct", Fields: o.Fields}, nil
	case *ops.Aggregate:
		return OpSpec{Op: "aggregate", Func: o.Func.String(), Field: o.Field}, nil
	case *ops.GroupBy:
		return OpSpec{Op: "groupby", Keys: o.Keys, Func: o.Func.String(), Field: o.Field}, nil
	case *ops.Sort:
		return OpSpec{Op: "sort", Field: o.Field, Descending: o.Descending}, nil
	case *ops.Retrieve:
		return OpSpec{Op: "retrieve", Query: o.Query, K: o.K}, nil
	default:
		return OpSpec{}, fmt.Errorf("serve: cannot encode %s operator", lop.Kind())
	}
}
