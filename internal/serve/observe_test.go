package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/pz"
)

// observeServer runs a server with the observability knobs under test:
// a tiny slow-query threshold so every real query lands in the slowlog.
func observeServer(t *testing.T, slowSec float64) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Context:         newStreamContext(t, 24, pz.Config{Parallelism: 2}),
		SlowQuerySimSec: slowSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func runStreamQuery(t *testing.T, url string) JobView {
	t.Helper()
	resp, data := postQuery(t, url, streamSpec("max-quality", workloads.StreamPredicates[0]), true, "alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || view.Result == nil {
		t.Fatalf("job %+v did not complete", view)
	}
	return view
}

// TestServeJobTraceEndpoint: a completed job serves its span tree as a
// versioned document; unknown jobs 404; traceless jobs 409.
func TestServeJobTraceEndpoint(t *testing.T) {
	_, ts := observeServer(t, 0)
	view := runStreamQuery(t, ts.URL)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var doc trace.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != trace.SchemaVersion || doc.JobID != view.ID || doc.Tenant != "alice" {
		t.Errorf("document header = %+v", doc)
	}
	if doc.Trace == nil || doc.Trace.Kind != trace.KindQuery {
		t.Fatalf("trace root = %+v, want a query span", doc.Trace)
	}
	stages := doc.Trace.Stages()
	if len(stages) == 0 {
		t.Fatal("trace has no stage spans")
	}
	if doc.Trace.SimMS != view.Result.ElapsedSimMS {
		t.Errorf("trace sim %d ms != job result %d ms", doc.Trace.SimMS, view.Result.ElapsedSimMS)
	}
	if doc.Trace.Attrs["policy"] == "" {
		t.Errorf("trace root not annotated with the policy: %v", doc.Trace.Attrs)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope/trace"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status %d, want 404", resp.StatusCode)
	}

}

// TestServeJobTraceNotReady: a job that is still executing has no trace
// yet, and the endpoint reports the conflict instead of serving an
// empty document. OnJobStart pins the job in its running state while
// the test probes.
func TestServeJobTraceNotReady(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv, err := New(Config{
		Context: newStreamContext(t, 24, pz.Config{Parallelism: 2}),
		OnJobStart: func(ctx context.Context, job *Job) {
			started <- job.ID()
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postQuery(t, ts.URL, streamSpec("max-quality", workloads.StreamPredicates[0]), false, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d: %s", resp.StatusCode, data)
	}
	id := <-started
	tresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusConflict {
		t.Errorf("running job trace status %d, want 409", tresp.StatusCode)
	}
	close(release)
	if view := awaitStatus(t, ts.URL, id); view.Status != StatusDone {
		t.Fatalf("job settled %s", view.Status)
	}
	tresp2, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tresp2.Body.Close()
	if tresp2.StatusCode != http.StatusOK {
		t.Errorf("finished job trace status %d, want 200", tresp2.StatusCode)
	}
}

// TestServeSlowlogAndTraceRing: queries past the threshold land in
// /v1/debug/slowlog, every query lands in /v1/debug/traces, and a zero
// threshold disables the log entirely.
func TestServeSlowlogAndTraceRing(t *testing.T) {
	// Any real LLM query takes far more than a millisecond of simulated
	// time, so this threshold catches everything.
	srv, ts := observeServer(t, 0.001)
	view := runStreamQuery(t, ts.URL)

	var slow struct {
		ThresholdSimSec float64          `json:"threshold_sim_sec"`
		Entries         []SlowQueryEntry `json:"entries"`
	}
	getJSON(t, ts.URL+"/v1/debug/slowlog", &slow)
	if slow.ThresholdSimSec != 0.001 {
		t.Errorf("threshold = %v, want 0.001", slow.ThresholdSimSec)
	}
	if len(slow.Entries) != 1 {
		t.Fatalf("slowlog has %d entries, want 1: %+v", len(slow.Entries), slow.Entries)
	}
	e := slow.Entries[0]
	if e.JobID != view.ID || e.Tenant != "alice" || e.ElapsedSimMS != view.Result.ElapsedSimMS || e.Plan == "" {
		t.Errorf("slowlog entry = %+v, job = %s/%d ms", e, view.ID, view.Result.ElapsedSimMS)
	}
	if got := srv.Counters().Get("slow_queries"); got != 1 {
		t.Errorf("slow_queries counter = %d, want 1", got)
	}

	var traces struct {
		Traces []*trace.Document `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/debug/traces", &traces)
	if len(traces.Traces) != 1 || traces.Traces[0].JobID != view.ID {
		t.Fatalf("trace ring = %+v, want the one finished job", traces.Traces)
	}

	// Threshold 0: queries still trace, but nothing is slow.
	_, off := observeServer(t, 0)
	runStreamQuery(t, off.URL)
	getJSON(t, off.URL+"/v1/debug/slowlog", &slow)
	if len(slow.Entries) != 0 {
		t.Errorf("disabled slowlog retained %d entries", len(slow.Entries))
	}
}

// TestServeMetricsProm: the default /metrics form is Prometheus text
// with the query histograms; ?format=json keeps the JSON snapshot and
// now carries histogram views.
func TestServeMetricsProm(t *testing.T) {
	_, ts := observeServer(t, 0)
	runStreamQuery(t, ts.URL)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("content type %q, want %q", ct, metrics.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, frag := range []string{
		"# TYPE pz_query_sim_seconds histogram",
		`pz_query_sim_seconds_bucket{le="+Inf"} 1`,
		"pz_query_sim_seconds_count 1",
		"# TYPE pz_query_cost_usd histogram",
		"# TYPE pz_queries_done gauge\npz_queries_done 1",
		"pz_admission_running 0",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("/metrics missing %q:\n%s", frag, text)
		}
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.Counters["queries_done"] != 1 {
		t.Errorf("json counters = %v", m.Counters)
	}
	h, ok := m.Histograms["query_sim_seconds"]
	if !ok || h.Count != 1 || h.P50 <= 0 {
		t.Errorf("json histogram view = %+v", m.Histograms)
	}
}
