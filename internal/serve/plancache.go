package serve

import (
	"container/list"
	"sync"

	"repro/internal/optimizer"
)

// PlanCache memoizes optimized physical plans across queries, keyed by the
// canonical fingerprint of (logical plan, policy, optimizer options) from
// optimizer.Fingerprint. A repeat query skips enumeration and selection
// entirely and replays the cached plan — the serving-layer analogue of the
// LLM response cache one level down. Bounded with LRU eviction; safe for
// concurrent use.
//
// Cached *optimizer.Plan values are shared by concurrent executions; that
// is sound because physical operators never mutate themselves during
// Execute (calibration writes happen only inside the optimizer, before a
// plan is published here).
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	hits     int
	misses   int
}

type planEntry struct {
	key        string
	plan       *optimizer.Plan
	candidates int
}

// NewPlanCache builds a cache bounded to capacity plans (min 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// Get returns the cached plan and its original candidate count for a
// fingerprint, recording a hit or miss.
func (c *PlanCache) Get(fingerprint string) (*optimizer.Plan, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fingerprint]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*planEntry)
	return e.plan, e.candidates, true
}

// Put stores an optimized plan under its fingerprint, evicting the least
// recently used entry at capacity.
func (c *PlanCache) Put(fingerprint string, plan *optimizer.Plan, candidates int) {
	if plan == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fingerprint]; ok {
		e := el.Value.(*planEntry)
		e.plan, e.candidates = plan, candidates
		c.order.MoveToFront(el)
		return
	}
	if len(c.entries) >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*planEntry).key)
		}
	}
	c.entries[fingerprint] = c.order.PushFront(&planEntry{
		key: fingerprint, plan: plan, candidates: candidates,
	})
}

// PlanCacheStats is a snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// Stats reports hit/miss counts and occupancy.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.entries), Capacity: c.capacity}
}
