package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/workloads"
	"repro/pz"
)

// miniTrack is a small valid grid over the Go support domain.
const miniTrack = `{
  "name": "mini",
  "description": "unit-test grid",
  "datasets": [
    {"name": "support", "domain": "support", "docs": 40, "seed": 5,
     "ops": [{"op": "filter", "predicate": "The ticket is urgent and needs immediate attention"}]}
  ],
  "parallelism": [1, 2],
  "partitions": [1, 2],
  "policies": ["max-quality"]
}`

func parseMini(t *testing.T) *Track {
	t.Helper()
	tr, err := ParseTrack([]byte(miniTrack))
	if err != nil {
		t.Fatalf("parse mini track: %v", err)
	}
	return tr
}

func TestTrackCells(t *testing.T) {
	if got := parseMini(t).Cells(); got != 4 {
		t.Fatalf("mini grid has %d cells, want 4", got)
	}
}

func TestParseTrackRejects(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(miniTrack, old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", ``, "EOF"},
		{"oversized", `{"x": "` + strings.Repeat("y", MaxTrackBytes) + `"}`, "limit"},
		{"unknown key", mut(`"name": "mini"`, `"name": "mini", "typo": 1`), "unknown field"},
		{"trailing", miniTrack + `{}`, "trailing data"},
		{"no name", mut(`"name": "mini"`, `"name": ""`), "no name"},
		{"no datasets", mut(`"datasets": [`, `"datasets": [], "ignored": [`), "unknown field"},
		{"nameless dataset", mut(`"name": "support"`, `"name": ""`), "has no name"},
		{"no domain", mut(`"domain": "support"`, `"domain": ""`), "no domain or spec"},
		{"zero docs", mut(`"docs": 40`, `"docs": 0`), "docs 0 outside"},
		{"huge docs", mut(`"docs": 40`, `"docs": 99999999`), "outside"},
		{"bad rate", mut(`"seed": 5`, `"seed": 5, "rate": 1.7`), "rate 1.7 outside"},
		{"no ops", mut(`"ops": [{"op": "filter", "predicate": "The ticket is urgent and needs immediate attention"}]`,
			`"ops": []`), "no ops"},
		{"no parallelism", mut(`"parallelism": [1, 2]`, `"parallelism": []`), "parallelism values"},
		{"zero knob", mut(`"partitions": [1, 2]`, `"partitions": [0]`), "outside [1, 64]"},
		{"huge knob", mut(`"parallelism": [1, 2]`, `"parallelism": [999]`), "outside [1, 64]"},
		{"no policies", mut(`"policies": ["max-quality"]`, `"policies": []`), "policies"},
		{"bad policy", mut(`"max-quality"`, `"warp-speed"`), "warp-speed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrack([]byte(tc.doc))
			if err == nil {
				t.Fatalf("ParseTrack accepted a bad track")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseTrackDuplicateDataset(t *testing.T) {
	doc := strings.Replace(miniTrack, `"datasets": [`, `"datasets": [
    {"name": "support", "domain": "support", "docs": 10, "seed": 1,
     "ops": [{"op": "filter", "predicate": "p"}]},`, 1)
	if _, err := ParseTrack([]byte(doc)); err == nil || !strings.Contains(err.Error(), "duplicate dataset") {
		t.Fatalf("want duplicate-dataset error, got %v", err)
	}
}

func TestGridCap(t *testing.T) {
	doc := strings.Replace(miniTrack, `"parallelism": [1, 2]`,
		`"parallelism": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]`, 1)
	doc = strings.Replace(doc, `"partitions": [1, 2]`,
		`"partitions": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]`, 1)
	doc = strings.Replace(doc, `"policies": ["max-quality"]`,
		`"policies": ["max-quality", "min-cost"]`, 1)
	if _, err := ParseTrack([]byte(doc)); err == nil || !strings.Contains(err.Error(), "cells, limit") {
		t.Fatalf("want grid-cap error, got %v", err)
	}
}

func runMini(t *testing.T, dir string) *Trajectory {
	t.Helper()
	tr, err := Run(parseMini(t), strings.Repeat("ab", 32), Options{CorpusDir: dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr
}

func TestRunMiniTrack(t *testing.T) {
	dir := t.TempDir()
	tr := runMini(t, dir)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trajectory invalid: %v", err)
	}
	if len(tr.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(tr.Cells))
	}
	for i, c := range tr.Cells {
		if c.ElapsedSimMS <= 0 || c.CostUSD <= 0 || c.Records == 0 {
			t.Fatalf("cell %d carries no measurements: %+v", i, c)
		}
		if c.Quality == nil {
			t.Fatalf("cell %d has no quality (pipeline leads with a filter)", i)
		}
		if c.DocsPerSimSec <= 0 {
			t.Fatalf("cell %d has no throughput", i)
		}
		if c.Domain != "support" || c.Docs != 40 {
			t.Fatalf("cell %d mislabeled: %+v", i, c)
		}
	}
	// Outputs and cost are invariant across the parallelism/partition
	// axes; only simulated elapsed moves.
	for _, c := range tr.Cells[1:] {
		if c.Records != tr.Cells[0].Records || c.CostUSD != tr.Cells[0].CostUSD {
			t.Fatalf("records/cost vary across the grid: %+v vs %+v", tr.Cells[0], c)
		}
	}
	if tr.Cells[0].ElapsedSimMS <= tr.Cells[3].ElapsedSimMS {
		t.Fatalf("p=1/parts=1 (%d ms) should be slower than p=2/parts=2 (%d ms)",
			tr.Cells[0].ElapsedSimMS, tr.Cells[3].ElapsedSimMS)
	}
}

func TestRunDeterministicAndCorpusReuse(t *testing.T) {
	dir := t.TempDir()
	a := runMini(t, dir)
	path := filepath.Join(dir, "support-n40-s5.ndjson")
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatalf("corpus not written: %v", err)
	}
	b := runMini(t, dir)
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.ModTime().Equal(st2.ModTime()) {
		t.Fatalf("second run regenerated the corpus instead of reusing it")
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		ca.WallMS, cb.WallMS = 0, 0
		if (ca.Quality == nil) != (cb.Quality == nil) || (ca.Quality != nil && *ca.Quality != *cb.Quality) {
			t.Fatalf("cell %d quality not deterministic: %+v vs %+v", i, ca.Quality, cb.Quality)
		}
		ca.Quality, cb.Quality = nil, nil
		if !reflect.DeepEqual(ca.Trace, cb.Trace) {
			t.Fatalf("cell %d trace not deterministic:\n  %+v\n  %+v", i, ca.Trace, cb.Trace)
		}
		ca.Trace, cb.Trace = nil, nil
		if ca != cb {
			t.Fatalf("cell %d not deterministic:\n  %+v\n  %+v", i, ca, cb)
		}
	}
}

// TestRunSpecDataset drives the config-driven path: the dataset's domain
// comes from a spec file, resolved relative to the track directory.
func TestRunSpecDataset(t *testing.T) {
	doc := strings.Replace(miniTrack,
		`"domain": "support"`,
		`"spec": "specs/support-triage.json"`, 1)
	track, err := ParseTrack([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(track, strings.Repeat("cd", 32), Options{CorpusDir: t.TempDir(), TrackDir: "../.."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, c := range tr.Cells {
		if c.Domain != "support-triage" {
			t.Fatalf("cell %d domain %q, want the spec-declared support-triage", i, c.Domain)
		}
		if c.Quality == nil || c.Quality.F1 == 0 {
			t.Fatalf("cell %d: no quality against spec-generated truth: %+v", i, c.Quality)
		}
	}
}

// TestRunServerMode executes cells against a live pzserve and checks the
// trajectory carries the server's sim-clock measurements.
func TestRunServerMode(t *testing.T) {
	pzctx, err := pz.NewContext(pz.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Context: pzctx})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	local := runMini(t, t.TempDir())
	tr, err := Run(parseMini(t), strings.Repeat("ef", 32), Options{CorpusDir: t.TempDir(), ServerURL: ts.URL})
	if err != nil {
		t.Fatalf("server-mode run: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Server != ts.URL {
		t.Fatalf("trajectory server %q, want %q", tr.Server, ts.URL)
	}
	for i, c := range tr.Cells {
		if c.Quality != nil {
			t.Fatalf("cell %d: server mode cannot score quality, got %+v", i, c.Quality)
		}
		if c.Records != local.Cells[i].Records {
			t.Fatalf("cell %d: server records %d != local %d", i, c.Records, local.Cells[i].Records)
		}
		if c.CostUSD != local.Cells[i].CostUSD {
			t.Fatalf("cell %d: server cost %v != local %v", i, c.CostUSD, local.Cells[i].CostUSD)
		}
	}
}

func TestRunUnknownDomain(t *testing.T) {
	doc := strings.Replace(miniTrack, `"domain": "support"`, `"domain": "nope"`, 1)
	track, err := ParseTrack([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(track, strings.Repeat("00", 32), Options{CorpusDir: t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "unknown domain") {
		t.Fatalf("want unknown-domain error, got %v", err)
	}
}

func TestTrajectoryRoundTripAndValidate(t *testing.T) {
	tr := runMini(t, t.TempDir())
	tr.GitSHA = "deadbeef"
	tr.GeneratedAt = "2026-08-08T00:00:00Z"
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Track != "mini" || len(got.Cells) != 4 || got.GitSHA != "deadbeef" {
		t.Fatalf("round trip mangled the trajectory: %+v", got)
	}

	bad := *got
	bad.SchemaVersion = 99
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("want schema_version error, got %v", err)
	}
	bad = *got
	bad.TrackDigest = "short"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("want digest error, got %v", err)
	}
	bad = *got
	bad.Cells = nil
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Fatalf("want no-cells error, got %v", err)
	}
	bad = *got
	bad.Cells = append([]Cell{}, got.Cells...)
	bad.Cells[0].Parallelism = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Fatalf("want parallelism error, got %v", err)
	}

	// A corrupt artifact on disk is an error, not a crash.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrajectory(path); err == nil {
		t.Fatalf("ReadTrajectory accepted garbage")
	}
}

func TestLoadTrackDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	if err := os.WriteFile(path, []byte(miniTrack), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, digest, err := LoadTrack(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "mini" || len(digest) != 64 {
		t.Fatalf("track %q digest %q", tr.Name, digest)
	}
	var raw map[string]any
	if err := json.Unmarshal([]byte(miniTrack), &raw); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTrack(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatalf("LoadTrack of a missing file should fail")
	}
}

var _ = workloads.SupportPredicate // the mini track quotes it verbatim

// cascadeMiniTrack is miniTrack with an embedded corpus, a cascade-capable
// policy pair, and the two assertion kinds the cascade CI gate uses.
const cascadeMiniTrack = `{
  "name": "cascade-mini",
  "datasets": [
    {"name": "support", "domain": "support", "docs": 300, "seed": 17, "embed": true,
     "ops": [{"op": "filter", "predicate": "The ticket is urgent and needs immediate attention"}]}
  ],
  "parallelism": [2],
  "partitions": [1],
  "policies": ["max-quality", "cost-at-quality"],
  "policy_param": 0.95,
  "assertions": [
    {"kind": "cost_ratio_min", "dataset": "support",
     "baseline_policy": "max-quality", "candidate_policy": "cost-at-quality", "value": 2.0},
    {"kind": "quality_delta_max", "dataset": "support",
     "baseline_policy": "max-quality", "candidate_policy": "cost-at-quality", "value": 0.05}
  ]
}`

func TestParseTrackRejectsBadAssertions(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(cascadeMiniTrack, old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown kind", mut(`"kind": "cost_ratio_min"`, `"kind": "speedup"`), "unknown kind"},
		{"undeclared dataset", mut(`"kind": "cost_ratio_min", "dataset": "support"`,
			`"kind": "cost_ratio_min", "dataset": "nope"`), "undeclared dataset"},
		{"off-axis policy", mut(`"baseline_policy": "max-quality", "candidate_policy": "cost-at-quality", "value": 2.0`,
			`"baseline_policy": "min-cost", "candidate_policy": "cost-at-quality", "value": 2.0`), "outside the track's policy axis"},
		{"zero ratio", mut(`"value": 2.0`, `"value": 0`), "positive ratio"},
		{"negative delta", mut(`"value": 0.05`, `"value": -0.1`), "non-negative delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrack([]byte(tc.doc))
			if err == nil {
				t.Fatalf("ParseTrack accepted a bad assertion")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunCascadeTrackAndAssertions is the end-to-end bench path behind
// tracks/cascade.json: the embed flag yields a sidecar, the cost policy's
// cell really runs a cascade (visible in its trace summary), and the
// track's own assertions hold on the measured grid.
func TestRunCascadeTrackAndAssertions(t *testing.T) {
	track, err := ParseTrack([]byte(cascadeMiniTrack))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tr, err := Run(track, strings.Repeat("01", 32), Options{CorpusDir: dir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "support-n300-s17.ndjson.embeddings")); err != nil {
		t.Fatalf("embed dataset wrote no sidecar: %v", err)
	}
	if len(tr.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(tr.Cells))
	}
	var cascCell *Cell
	for i := range tr.Cells {
		if tr.Cells[i].Policy == "cost-at-quality" {
			cascCell = &tr.Cells[i]
		}
	}
	if cascCell == nil || cascCell.Trace == nil {
		t.Fatalf("no traced cost-at-quality cell in %+v", tr.Cells)
	}
	found := false
	for _, st := range cascCell.Trace.Stages {
		if strings.HasPrefix(st.Op, "cascade-filter(") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cost-at-quality cell did not run a cascade: %+v", cascCell.Trace.Stages)
	}

	outcomes, err := EvalAssertions(track, tr)
	if err != nil {
		t.Fatalf("eval assertions: %v", err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Pass {
			t.Errorf("assertion failed: %s", o)
		}
		if !strings.Contains(o.String(), "PASS") && !strings.Contains(o.String(), "FAIL") {
			t.Errorf("outcome renders no verdict: %q", o)
		}
	}

	// An unsatisfiable ratio fails cleanly rather than erroring.
	track.Assertions[0].Value = 1e9
	outcomes, err = EvalAssertions(track, tr)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Pass {
		t.Fatalf("1e9x ratio claim passed: %s", outcomes[0])
	}

	// Reuse keeps the sidecar: a second run must not error and must
	// leave the same embeddings file in place.
	if _, err := Run(track, strings.Repeat("01", 32), Options{CorpusDir: dir}); err != nil {
		t.Fatalf("reuse run: %v", err)
	}
}

func TestEvalAssertionsStructuralErrors(t *testing.T) {
	track, err := ParseTrack([]byte(cascadeMiniTrack))
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trajectory{Cells: []Cell{{Dataset: "support", Policy: "max-quality", CostUSD: 1}}}
	if _, err := EvalAssertions(track, tr); err == nil ||
		!strings.Contains(err.Error(), "no cells") {
		t.Fatalf("want no-cells error, got %v", err)
	}
	// Quality claims need measured quality on both sides.
	tr.Cells = append(tr.Cells, Cell{Dataset: "support", Policy: "cost-at-quality", CostUSD: 0.1})
	track.Assertions = track.Assertions[1:]
	if _, err := EvalAssertions(track, tr); err == nil ||
		!strings.Contains(err.Error(), "no quality") {
		t.Fatalf("want no-quality error, got %v", err)
	}
}

func TestParseTrackRejectsReoptAndPriors(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(miniTrack, old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"negative reopt after", mut(`"seed": 5,`, `"seed": 5, "reopt_after": -1,`), "reopt_after -1"},
		{"negative reopt divergence", mut(`"seed": 5,`, `"seed": 5, "reopt_divergence": -0.5,`), "reopt_divergence -0.5"},
		{"prior at scan", mut(`"seed": 5,`, `"seed": 5, "priors": {"0": {"selectivity": 0.5}},`), "prior position 0"},
		{"prior past pipeline", mut(`"seed": 5,`, `"seed": 5, "priors": {"9": {"selectivity": 0.5}},`), "prior position 9"},
		{"prior selectivity above one", mut(`"seed": 5,`, `"seed": 5, "priors": {"1": {"selectivity": 1.5}},`), "selectivity 1.5"},
		{"prior negative fanout", mut(`"seed": 5,`, `"seed": 5, "priors": {"1": {"fanout": -2}},`), "fanout -2"},
		{"undeclared baseline dataset", strings.Replace(miniTrack, `"policies": ["max-quality"]`,
			`"policies": ["max-quality"],
  "assertions": [{"kind": "cost_ratio_min", "dataset": "support", "baseline_dataset": "ghost",
    "baseline_policy": "max-quality", "candidate_policy": "max-quality", "value": 1}]`, 1),
			`undeclared baseline dataset "ghost"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrack([]byte(tc.doc))
			if err == nil {
				t.Fatal("ParseTrack accepted a bad track")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEvalAssertionsCrossDataset: a cost_ratio_min whose baseline cells
// come from a different dataset — the shape the reopt track uses to gate
// the mis-seeded pipeline's recovered cost against its omnisciently-seeded
// twin.
func TestEvalAssertionsCrossDataset(t *testing.T) {
	track := &Track{
		Assertions: []TrackAssertion{{
			Kind: AssertCostRatioMin, Dataset: "misseeded", BaselineDataset: "omniscient",
			BaselinePolicy: "max-quality", CandidatePolicy: "max-quality", Value: 0.9,
		}},
	}
	tr := &Trajectory{Cells: []Cell{
		{Dataset: "omniscient", Policy: "max-quality", CostUSD: 2.0},
		{Dataset: "misseeded", Policy: "max-quality", CostUSD: 2.1},
	}}
	outcomes, err := EvalAssertions(track, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomes[0].Measured; got < 0.95 || got > 0.96 {
		t.Fatalf("cross-dataset ratio = %v, want 2.0/2.1", got)
	}
	if !outcomes[0].Pass {
		t.Fatalf("ratio 0.952 >= 0.9 should pass: %s", outcomes[0])
	}
	if s := outcomes[0].String(); !strings.Contains(s, "misseeded/max-quality vs omniscient/max-quality") {
		t.Fatalf("cross-dataset outcome does not name both datasets: %q", s)
	}

	// The candidate dataset missing entirely is a structural error.
	tr.Cells = tr.Cells[:1]
	if _, err := EvalAssertions(track, tr); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Fatalf("want no-cells error, got %v", err)
	}
}

// TestRunServerModeTraceError: a daemon that serves queries but not the
// trace endpoint must leave a recorded reason on the cell, not a silently
// nil Trace.
func TestRunServerModeTraceError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id": "j1", "status": "succeeded", "result":
			{"records": [], "count": 3, "candidates": 2, "elapsed_sim_ms": 10, "cost_usd": 0.5}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tr, err := Run(parseMini(t), strings.Repeat("cd", 32), Options{CorpusDir: t.TempDir(), ServerURL: ts.URL})
	if err != nil {
		t.Fatalf("server-mode run: %v", err)
	}
	for i, c := range tr.Cells {
		if c.Trace != nil {
			t.Fatalf("cell %d: got a trace from a daemon with no trace endpoint", i)
		}
		if !strings.Contains(c.TraceError, "HTTP 404") {
			t.Fatalf("cell %d: trace_error %q does not record the HTTP failure", i, c.TraceError)
		}
	}
}
