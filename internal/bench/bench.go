// Package bench is the rally-style track harness behind cmd/pzbench: a
// track file declares a benchmark grid (datasets × parallelism ×
// partitions × policies), the runner generates or reuses the corpora,
// executes every cell through the real pz engine (or a running pzserve),
// and emits one schema-versioned trajectory artifact
// (BENCH_trajectory.json) — per-cell simulated time, cost,
// quality-vs-truth, and throughput, stamped with the git SHA and the
// track digest so runs are comparable across PRs. One artifact replaces
// the per-PR BENCH_*.json scatter.
package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/corpus/spec"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/pz"
)

// SchemaVersion is the trajectory artifact format version. v2 added the
// per-cell trace summary digest; v3 added per-cell trace_error, dataset
// estimate priors and re-optimization knobs, and cross-dataset assertion
// baselines.
const SchemaVersion = 3

// Limits on track shape: tracks are user input, and every knob multiplies
// the grid, so each axis is bounded before the runner fans out.
const (
	// MaxDatasets bounds the dataset axis.
	MaxDatasets = 16
	// MaxAxis bounds the parallelism/partitions/policies axes.
	MaxAxis = 16
	// MaxCells bounds the whole grid.
	MaxCells = 256
	// MaxDocs bounds one dataset's corpus size.
	MaxDocs = 1_000_000
	// MaxKnob bounds one parallelism or partition value.
	MaxKnob = 64
	// MaxTrackBytes bounds the raw track document.
	MaxTrackBytes = 1 << 20
)

// Track declares a benchmark grid. Every combination of dataset ×
// parallelism × partitions × policy becomes one cell.
type Track struct {
	// Name identifies the track in the trajectory.
	Name string `json:"name"`
	// Description is a one-line summary.
	Description string `json:"description,omitempty"`
	// Datasets are the corpora and pipelines to measure.
	Datasets []TrackDataset `json:"datasets"`
	// Parallelism lists the per-operator concurrency levels to sweep.
	Parallelism []int `json:"parallelism"`
	// Partitions lists the scan fan-outs to sweep.
	Partitions []int `json:"partitions"`
	// Policies lists the optimization policies to sweep ("max-quality",
	// "min-cost", ...).
	Policies []string `json:"policies"`
	// PolicyParam parameterizes constrained policies.
	PolicyParam float64 `json:"policy_param,omitempty"`
	// Assertions are pass/fail claims checked against the finished grid —
	// `pzbench run` evaluates them after writing the artifact and exits
	// non-zero when one fails, which is how CI gates on a track.
	Assertions []TrackAssertion `json:"assertions,omitempty"`
}

// TrackDataset is one dataset axis entry: a corpus recipe (domain, size,
// rate, seed) plus the declarative pipeline to run over it.
type TrackDataset struct {
	// Name labels the dataset in cells and names the generated corpus.
	Name string `json:"name"`
	// Domain is the corpus domain to generate from (a built-in Go domain
	// or the name of the domain Spec declares).
	Domain string `json:"domain"`
	// Spec optionally points at a domain-spec file (see
	// docs/howto-corpus.md) to compile and register before generation —
	// the config-driven path. Relative paths resolve against the track
	// file's directory.
	Spec string `json:"spec,omitempty"`
	// Docs is the corpus size.
	Docs int `json:"docs"`
	// Rate overrides the domain's positive-class rate (nil = default).
	Rate *float64 `json:"rate,omitempty"`
	// Seed makes the corpus deterministic.
	Seed int64 `json:"seed"`
	// Embed also writes the corpus's embedding sidecar (as `pzcorpus
	// embed` would), which is what lets the optimizer enumerate
	// cascade-filter plans for the dataset.
	Embed bool `json:"embed,omitempty"`
	// Ops is the declarative operator chain to execute (serve wire form).
	Ops []serve.OpSpec `json:"ops"`
	// Priors seeds the optimizer's cost-model estimates by logical plan
	// position (1 = the first op after the scan) — how a track stages the
	// mis-estimation scenarios re-optimization recovers from. Local mode
	// only; server cells ignore priors (they cannot cross the wire).
	Priors map[int]PriorSpec `json:"priors,omitempty"`
	// ReoptAfter enables adaptive mid-flight re-optimization for the
	// dataset's cells: the observation window in batches (0 = off).
	ReoptAfter int `json:"reopt_after,omitempty"`
	// ReoptDivergence overrides the re-plan divergence trigger (0 = the
	// engine default).
	ReoptDivergence float64 `json:"reopt_divergence,omitempty"`
}

// PriorSpec is one seeded cost-model estimate: selectivity for a filter
// position, fan-out for a convert position.
type PriorSpec struct {
	Selectivity float64 `json:"selectivity,omitempty"`
	Fanout      float64 `json:"fanout,omitempty"`
}

func (d *TrackDataset) rate() float64 {
	if d.Rate == nil {
		return -1
	}
	return *d.Rate
}

// priors converts the dataset's seeded estimates into the engine's form.
func (d *TrackDataset) priors() map[int]pz.OpEstimate {
	if len(d.Priors) == 0 {
		return nil
	}
	out := make(map[int]pz.OpEstimate, len(d.Priors))
	for pos, p := range d.Priors {
		out[pos] = pz.OpEstimate{Selectivity: p.Selectivity, Fanout: p.Fanout}
	}
	return out
}

// Assertion kinds.
const (
	// AssertCostRatioMin claims the baseline policy's summed cost over a
	// dataset is at least Value times the candidate policy's.
	AssertCostRatioMin = "cost_ratio_min"
	// AssertQualityDeltaMax claims the candidate policy's mean F1 over a
	// dataset trails the baseline policy's by at most Value.
	AssertQualityDeltaMax = "quality_delta_max"
)

// TrackAssertion is one pass/fail claim a track makes about its own grid,
// comparing a candidate policy against a baseline policy on one dataset.
type TrackAssertion struct {
	// Kind selects the check (AssertCostRatioMin, AssertQualityDeltaMax).
	Kind string `json:"kind"`
	// Dataset names the dataset whose cells the claim is about.
	Dataset string `json:"dataset"`
	// BaselineDataset optionally draws the baseline cells from a different
	// dataset than the candidate's — how a track compares the same
	// pipeline under different priors (e.g. re-optimization recovery vs an
	// omnisciently-seeded twin). Empty means Dataset.
	BaselineDataset string `json:"baseline_dataset,omitempty"`
	// BaselinePolicy and CandidatePolicy are the two policy axis values
	// compared; both must appear in the track's Policies.
	BaselinePolicy  string `json:"baseline_policy"`
	CandidatePolicy string `json:"candidate_policy"`
	// Value is the threshold (minimum ratio, maximum delta).
	Value float64 `json:"value"`
}

// AssertionOutcome is one evaluated assertion, recorded in the trajectory
// so the artifact carries its own verdicts.
type AssertionOutcome struct {
	TrackAssertion
	// Measured is the observed ratio or delta.
	Measured float64 `json:"measured"`
	Pass     bool    `json:"pass"`
}

// ParseTrack decodes and validates a track document. Unknown keys are
// rejected so a typo'd axis cannot silently shrink a grid.
func ParseTrack(data []byte) (*Track, error) {
	if len(data) > MaxTrackBytes {
		return nil, fmt.Errorf("bench: track is %d bytes, limit %d", len(data), MaxTrackBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Track
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("bench: parse track: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bench: trailing data after track document")
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTrack reads and parses a track file, returning the track and the
// SHA-256 digest of its bytes (the trajectory's track_digest).
func LoadTrack(path string) (*Track, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("bench: %w", err)
	}
	t, err := ParseTrack(data)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	sum := sha256.Sum256(data)
	return t, hex.EncodeToString(sum[:]), nil
}

func (t *Track) validate() error {
	if t.Name == "" {
		return fmt.Errorf("bench: track has no name")
	}
	if len(t.Datasets) == 0 || len(t.Datasets) > MaxDatasets {
		return fmt.Errorf("bench: track needs 1..%d datasets, got %d", MaxDatasets, len(t.Datasets))
	}
	seen := map[string]bool{}
	for i := range t.Datasets {
		d := &t.Datasets[i]
		if d.Name == "" {
			return fmt.Errorf("bench: dataset %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("bench: duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.Domain == "" && d.Spec == "" {
			return fmt.Errorf("bench: dataset %q names no domain or spec", d.Name)
		}
		if d.Docs <= 0 || d.Docs > MaxDocs {
			return fmt.Errorf("bench: dataset %q docs %d outside [1, %d]", d.Name, d.Docs, MaxDocs)
		}
		if r := d.Rate; r != nil && (*r < 0 || *r > 1) {
			return fmt.Errorf("bench: dataset %q rate %v outside [0, 1]", d.Name, *r)
		}
		if len(d.Ops) == 0 {
			return fmt.Errorf("bench: dataset %q declares no ops", d.Name)
		}
		if d.ReoptAfter < 0 {
			return fmt.Errorf("bench: dataset %q reopt_after %d is negative", d.Name, d.ReoptAfter)
		}
		if d.ReoptDivergence < 0 {
			return fmt.Errorf("bench: dataset %q reopt_divergence %v is negative", d.Name, d.ReoptDivergence)
		}
		for pos, p := range d.Priors {
			if pos < 1 || pos > len(d.Ops) {
				return fmt.Errorf("bench: dataset %q prior position %d outside the pipeline [1, %d]", d.Name, pos, len(d.Ops))
			}
			if p.Selectivity < 0 || p.Selectivity > 1 {
				return fmt.Errorf("bench: dataset %q prior %d selectivity %v outside [0, 1]", d.Name, pos, p.Selectivity)
			}
			if p.Fanout < 0 {
				return fmt.Errorf("bench: dataset %q prior %d fanout %v is negative", d.Name, pos, p.Fanout)
			}
		}
	}
	for _, axis := range []struct {
		what string
		vals []int
	}{{"parallelism", t.Parallelism}, {"partitions", t.Partitions}} {
		if len(axis.vals) == 0 || len(axis.vals) > MaxAxis {
			return fmt.Errorf("bench: track needs 1..%d %s values, got %d", MaxAxis, axis.what, len(axis.vals))
		}
		for _, v := range axis.vals {
			if v < 1 || v > MaxKnob {
				return fmt.Errorf("bench: %s value %d outside [1, %d]", axis.what, v, MaxKnob)
			}
		}
	}
	if len(t.Policies) == 0 || len(t.Policies) > MaxAxis {
		return fmt.Errorf("bench: track needs 1..%d policies, got %d", MaxAxis, len(t.Policies))
	}
	for _, p := range t.Policies {
		if _, err := pz.ParsePolicy(p, t.PolicyParam); err != nil {
			return fmt.Errorf("bench: %w", err)
		}
	}
	if n := t.Cells(); n > MaxCells {
		return fmt.Errorf("bench: grid has %d cells, limit %d", n, MaxCells)
	}
	policies := map[string]bool{}
	for _, p := range t.Policies {
		policies[p] = true
	}
	for i, a := range t.Assertions {
		switch a.Kind {
		case AssertCostRatioMin, AssertQualityDeltaMax:
		default:
			return fmt.Errorf("bench: assertion %d has unknown kind %q", i, a.Kind)
		}
		if !seen[a.Dataset] {
			return fmt.Errorf("bench: assertion %d names undeclared dataset %q", i, a.Dataset)
		}
		if a.BaselineDataset != "" && !seen[a.BaselineDataset] {
			return fmt.Errorf("bench: assertion %d names undeclared baseline dataset %q", i, a.BaselineDataset)
		}
		for _, p := range []string{a.BaselinePolicy, a.CandidatePolicy} {
			if !policies[p] {
				return fmt.Errorf("bench: assertion %d names policy %q outside the track's policy axis", i, p)
			}
		}
		if a.Kind == AssertCostRatioMin && a.Value <= 0 {
			return fmt.Errorf("bench: assertion %d needs a positive ratio, got %v", i, a.Value)
		}
		if a.Kind == AssertQualityDeltaMax && a.Value < 0 {
			return fmt.Errorf("bench: assertion %d needs a non-negative delta, got %v", i, a.Value)
		}
	}
	return nil
}

// EvalAssertions checks every track assertion against a finished
// trajectory. The returned outcomes cover all assertions (failing ones
// have Pass false); the error reports structural problems — a policy with
// no matching cells, or a quality claim over cells that measured none.
func EvalAssertions(t *Track, tr *Trajectory) ([]AssertionOutcome, error) {
	if len(t.Assertions) == 0 {
		return nil, nil
	}
	out := make([]AssertionOutcome, 0, len(t.Assertions))
	for i, a := range t.Assertions {
		base, err := gatherCells(tr, a.baselineDataset(), a.BaselinePolicy)
		if err != nil {
			return nil, fmt.Errorf("bench: assertion %d: %w", i, err)
		}
		cand, err := gatherCells(tr, a.Dataset, a.CandidatePolicy)
		if err != nil {
			return nil, fmt.Errorf("bench: assertion %d: %w", i, err)
		}
		o := AssertionOutcome{TrackAssertion: a}
		switch a.Kind {
		case AssertCostRatioMin:
			if cand.cost <= 0 {
				return nil, fmt.Errorf("bench: assertion %d: candidate %q spent $0, ratio undefined", i, a.CandidatePolicy)
			}
			o.Measured = base.cost / cand.cost
			o.Pass = o.Measured >= a.Value
		case AssertQualityDeltaMax:
			bf1, err := base.meanF1()
			if err != nil {
				return nil, fmt.Errorf("bench: assertion %d: baseline %q: %w", i, a.BaselinePolicy, err)
			}
			cf1, err := cand.meanF1()
			if err != nil {
				return nil, fmt.Errorf("bench: assertion %d: candidate %q: %w", i, a.CandidatePolicy, err)
			}
			o.Measured = bf1 - cf1
			o.Pass = o.Measured <= a.Value
		}
		out = append(out, o)
	}
	return out, nil
}

// baselineDataset resolves the dataset the baseline cells come from.
func (a *TrackAssertion) baselineDataset() string {
	if a.BaselineDataset != "" {
		return a.BaselineDataset
	}
	return a.Dataset
}

// String renders an outcome as one human-readable verdict line.
func (o AssertionOutcome) String() string {
	verdict := "PASS"
	if !o.Pass {
		verdict = "FAIL"
	}
	op := ">="
	if o.Kind == AssertQualityDeltaMax {
		op = "<="
	}
	candidate, baseline := o.CandidatePolicy, o.BaselinePolicy
	if o.BaselineDataset != "" && o.BaselineDataset != o.Dataset {
		candidate = o.Dataset + "/" + candidate
		baseline = o.BaselineDataset + "/" + baseline
	}
	return fmt.Sprintf("%s %s: %s vs %s: %.4f %s %.4f  %s",
		o.Kind, o.Dataset, candidate, baseline, o.Measured, op, o.Value, verdict)
}

// cellGroup aggregates the cells matching one (dataset, policy) pair.
type cellGroup struct {
	cost   float64
	f1     []float64
	missed int
}

func (g *cellGroup) meanF1() (float64, error) {
	if g.missed > 0 || len(g.f1) == 0 {
		return 0, fmt.Errorf("%d cell(s) measured no quality", g.missed)
	}
	var sum float64
	for _, v := range g.f1 {
		sum += v
	}
	return sum / float64(len(g.f1)), nil
}

func gatherCells(tr *Trajectory, dataset, policy string) (*cellGroup, error) {
	g := &cellGroup{}
	n := 0
	for _, c := range tr.Cells {
		if c.Dataset != dataset || c.Policy != policy {
			continue
		}
		n++
		g.cost += c.CostUSD
		if c.Quality != nil {
			g.f1 = append(g.f1, c.Quality.F1)
		} else {
			g.missed++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("no cells for dataset %q policy %q", dataset, policy)
	}
	return g, nil
}

// Cells is the grid size the track declares.
func (t *Track) Cells() int {
	return len(t.Datasets) * len(t.Parallelism) * len(t.Partitions) * len(t.Policies)
}

// Quality is a cell's filter quality against corpus ground truth.
type Quality struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
}

// Cell is one measured grid point.
type Cell struct {
	// Dataset/Domain/Docs identify the corpus; Parallelism, Partitions,
	// and Policy locate the cell on the grid.
	Dataset     string `json:"dataset"`
	Domain      string `json:"domain"`
	Docs        int    `json:"docs"`
	Parallelism int    `json:"parallelism"`
	Partitions  int    `json:"partitions"`
	Policy      string `json:"policy"`
	// Records is the output cardinality; Candidates is how many plans the
	// optimizer considered.
	Records    int `json:"records"`
	Candidates int `json:"candidates"`
	// ElapsedSimMS and CostUSD are the engine's simulated runtime and LLM
	// spend — deterministic for a fixed track and git SHA.
	ElapsedSimMS int64   `json:"elapsed_sim_ms"`
	CostUSD      float64 `json:"cost_usd"`
	// DocsPerSimSec is corpus throughput in simulated time.
	DocsPerSimSec float64 `json:"docs_per_sim_sec"`
	// WallMS is the host wall-clock spent on the cell (machine-dependent;
	// compare ElapsedSimMS across runs, not this).
	WallMS int64 `json:"wall_ms"`
	// Quality is filter quality versus corpus truth (nil when the
	// pipeline has no leading filter or in server mode, where the bench
	// client does not see truth-bearing records).
	Quality *Quality `json:"quality,omitempty"`
	// Trace is the per-stage digest of the cell's query trace: where the
	// simulated time, cost, and records went, stage by stage. Nil when
	// the engine (or a remote pzserve) produced no trace.
	Trace *TraceSummary `json:"trace,omitempty"`
	// TraceError records why a server-mode trace fetch came back empty
	// (HTTP failure, old daemon, decode error) instead of leaving a
	// silently nil Trace — a missing digest is a finding, not a shrug.
	TraceError string `json:"trace_error,omitempty"`
}

// TraceSummary condenses a cell's query trace into the flat per-stage
// rows a trajectory diff cares about, dropping the span tree's
// partition/worker detail.
type TraceSummary struct {
	Stages []TraceStage `json:"stages"`
}

// TraceStage is one stage row of a cell's trace summary.
type TraceStage struct {
	Op          string  `json:"op"`
	RecordsIn   int     `json:"records_in"`
	RecordsOut  int     `json:"records_out"`
	Selectivity float64 `json:"selectivity"`
	LLMCalls    int     `json:"llm_calls,omitempty"`
	CostUSD     float64 `json:"cost_usd"`
	SimMS       int64   `json:"sim_ms"`
}

// summarizeTrace digests a query trace into per-stage rows. Costs are
// rounded like Cell.CostUSD so identical runs emit byte-identical
// artifacts despite completion-order float accumulation.
func summarizeTrace(root *trace.Span) *TraceSummary {
	if root == nil {
		return nil
	}
	var sum TraceSummary
	for _, st := range root.Stages() {
		sum.Stages = append(sum.Stages, TraceStage{
			Op:          st.OpID,
			RecordsIn:   st.RecordsIn,
			RecordsOut:  st.RecordsOut,
			Selectivity: st.Selectivity,
			LLMCalls:    st.LLMCalls,
			CostUSD:     math.Round(st.CostUSD*1e6) / 1e6,
			SimMS:       st.SimMS,
		})
	}
	if len(sum.Stages) == 0 {
		return nil
	}
	return &sum
}

// Trajectory is the single benchmark artifact one track run emits.
type Trajectory struct {
	SchemaVersion int    `json:"schema_version"`
	Track         string `json:"track"`
	Description   string `json:"description,omitempty"`
	// TrackDigest is the SHA-256 of the track file: two trajectories are
	// comparable cell-for-cell exactly when their digests match.
	TrackDigest string `json:"track_digest"`
	// GitSHA locates the measured code revision.
	GitSHA string `json:"git_sha,omitempty"`
	// GeneratedAt is the RFC 3339 run timestamp ("" in deterministic
	// test fixtures).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Server is the pzserve URL when cells ran remotely ("" = in-process).
	Server string `json:"server,omitempty"`
	Cells  []Cell `json:"cells"`
	// Assertions are the track's evaluated claims (empty when the track
	// declares none), so the artifact carries its own verdicts.
	Assertions []AssertionOutcome `json:"assertions,omitempty"`
}

// Validate checks a trajectory is structurally sound — the gate behind
// `pzbench check` and the CI artifact step.
func (tr *Trajectory) Validate() error {
	if tr.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: trajectory schema_version %d (want %d)", tr.SchemaVersion, SchemaVersion)
	}
	if tr.Track == "" {
		return fmt.Errorf("bench: trajectory names no track")
	}
	if len(tr.TrackDigest) != sha256.Size*2 {
		return fmt.Errorf("bench: track_digest %q is not a SHA-256 hex digest", tr.TrackDigest)
	}
	if len(tr.Cells) == 0 {
		return fmt.Errorf("bench: trajectory has no cells")
	}
	for i, c := range tr.Cells {
		switch {
		case c.Dataset == "":
			return fmt.Errorf("bench: cell %d has no dataset", i)
		case c.Docs <= 0:
			return fmt.Errorf("bench: cell %d has %d docs", i, c.Docs)
		case c.Parallelism < 1 || c.Partitions < 1:
			return fmt.Errorf("bench: cell %d has parallelism %d, partitions %d", i, c.Parallelism, c.Partitions)
		case c.Policy == "":
			return fmt.Errorf("bench: cell %d has no policy", i)
		case c.ElapsedSimMS < 0 || c.CostUSD < 0 || c.Records < 0:
			return fmt.Errorf("bench: cell %d has negative measurements", i)
		}
	}
	return nil
}

// ReadTrajectory loads and validates a trajectory artifact.
func ReadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &tr, nil
}

// Write stores the trajectory at path, indented, trailing newline.
func (tr *Trajectory) Write(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Options configures one track run.
type Options struct {
	// CorpusDir is where generated corpora live; a corpus whose manifest
	// already matches the dataset recipe is reused, not regenerated.
	CorpusDir string
	// TrackDir resolves relative spec paths (usually the track file's
	// directory).
	TrackDir string
	// ServerURL, when set, runs cells against a running pzserve instead
	// of in-process (POST /v1/query?wait=1).
	ServerURL string
	// GitSHA stamps the trajectory.
	GitSHA string
	// Progress, when set, receives one line per completed cell.
	Progress func(string)
}

// Run executes the full grid and returns the trajectory. Corpora are
// generated (or reused) first, then every cell runs on a fresh pz context
// so no cache state leaks between cells.
func Run(t *Track, digest string, opts Options) (*Trajectory, error) {
	if opts.CorpusDir == "" {
		return nil, fmt.Errorf("bench: no corpus dir")
	}
	if err := os.MkdirAll(opts.CorpusDir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	paths := make(map[string]string, len(t.Datasets))
	domains := make(map[string]string, len(t.Datasets))
	for i := range t.Datasets {
		d := &t.Datasets[i]
		domain, err := ensureDomain(d, opts.TrackDir)
		if err != nil {
			return nil, err
		}
		path, err := ensureCorpus(d, domain, opts)
		if err != nil {
			return nil, err
		}
		paths[d.Name], domains[d.Name] = path, domain
	}

	tr := &Trajectory{
		SchemaVersion: SchemaVersion,
		Track:         t.Name,
		Description:   t.Description,
		TrackDigest:   digest,
		GitSHA:        opts.GitSHA,
		Server:        opts.ServerURL,
	}
	for i := range t.Datasets {
		d := &t.Datasets[i]
		for _, par := range t.Parallelism {
			for _, parts := range t.Partitions {
				for _, policy := range t.Policies {
					cell, err := runCell(t, d, domains[d.Name], paths[d.Name], par, parts, policy, opts)
					if err != nil {
						return nil, fmt.Errorf("bench: %s p=%d parts=%d %s: %w", d.Name, par, parts, policy, err)
					}
					tr.Cells = append(tr.Cells, *cell)
					if opts.Progress != nil {
						opts.Progress(fmt.Sprintf("%-12s p=%-2d parts=%-2d %-12s %6d ms  $%.4f  %d records",
							d.Name, par, parts, policy, cell.ElapsedSimMS, cell.CostUSD, cell.Records))
					}
				}
			}
		}
	}
	return tr, nil
}

// ensureDomain resolves a dataset's domain, compiling and registering its
// spec file first when one is declared.
func ensureDomain(d *TrackDataset, trackDir string) (string, error) {
	if d.Spec == "" {
		if _, ok := corpus.DomainByName(d.Domain); !ok {
			return "", fmt.Errorf("bench: dataset %q: unknown domain %q", d.Name, d.Domain)
		}
		return d.Domain, nil
	}
	path := d.Spec
	if !filepath.IsAbs(path) && trackDir != "" {
		path = filepath.Join(trackDir, path)
	}
	c, err := spec.Load(path)
	if err != nil {
		return "", fmt.Errorf("bench: dataset %q: %w", d.Name, err)
	}
	name := c.Spec().Name
	if d.Domain != "" && d.Domain != name {
		return "", fmt.Errorf("bench: dataset %q: spec %s declares domain %q, track says %q", d.Name, d.Spec, name, d.Domain)
	}
	if _, ok := corpus.DomainByName(name); !ok {
		if err := c.Register(); err != nil {
			return "", fmt.Errorf("bench: dataset %q: %w", d.Name, err)
		}
	}
	return name, nil
}

// ensureCorpus generates the dataset's corpus under CorpusDir, reusing an
// existing file whose manifest matches the recipe (domain, docs, seed).
// Embed datasets also get their embedding sidecar, back-filled even on
// the reuse path so flipping the flag on doesn't demand a regeneration.
func ensureCorpus(d *TrackDataset, domain string, opts Options) (string, error) {
	path := filepath.Join(opts.CorpusDir, fmt.Sprintf("%s-n%d-s%d.ndjson", domain, d.Docs, d.Seed))
	if m, err := corpus.ReadManifest(path); err == nil &&
		m.Domain == domain && m.NumDocs == d.Docs && m.Seed == d.Seed {
		return path, ensureSidecar(d, m, path)
	}
	g, err := corpus.NewGenerator(domain, d.Docs, d.rate(), d.Seed)
	if err != nil {
		return "", fmt.Errorf("bench: dataset %q: %w", d.Name, err)
	}
	cfg := map[string]any{"domain": domain, "docs": d.Docs, "seed": d.Seed}
	if d.Rate != nil {
		cfg["rate"] = *d.Rate
	}
	m, err := corpus.SaveNDJSON(path, g, d.Seed, cfg)
	if err != nil {
		return "", fmt.Errorf("bench: dataset %q: %w", d.Name, err)
	}
	return path, ensureSidecar(d, m, path)
}

// ensureSidecar writes the corpus's embedding sidecar when the dataset
// asks for one and the manifest doesn't reference it yet.
func ensureSidecar(d *TrackDataset, m *corpus.Manifest, path string) error {
	if !d.Embed || m.Embeddings != nil {
		return nil
	}
	if _, err := corpus.EmbedNDJSON(path, llm.EmbedDim, llm.EmbedVector); err != nil {
		return fmt.Errorf("bench: dataset %q: %w", d.Name, err)
	}
	return nil
}

// runCell measures one grid point.
func runCell(t *Track, d *TrackDataset, domain, corpusPath string, par, parts int, policy string, opts Options) (*Cell, error) {
	cell := &Cell{
		Dataset: d.Name, Domain: domain, Docs: d.Docs,
		Parallelism: par, Partitions: parts, Policy: policy,
	}
	pspec := &serve.Spec{
		Dataset:         serve.DatasetSpec{Name: d.Name, File: corpusPath},
		Ops:             d.Ops,
		Policy:          policy,
		PolicyParam:     t.PolicyParam,
		Partitions:      parts,
		ReoptAfter:      d.ReoptAfter,
		ReoptDivergence: d.ReoptDivergence,
	}
	start := time.Now()
	if opts.ServerURL != "" {
		if err := runCellServer(cell, pspec, opts.ServerURL); err != nil {
			return nil, err
		}
	} else {
		if err := runCellLocal(cell, d, pspec, par, parts, corpusPath); err != nil {
			return nil, err
		}
	}
	cell.WallMS = time.Since(start).Milliseconds()
	// Partitioned pipelines accumulate per-partition costs in completion
	// order; round away the last-ulp float wobble so identical runs emit
	// byte-identical measurements.
	cell.CostUSD = math.Round(cell.CostUSD*1e6) / 1e6
	if cell.ElapsedSimMS > 0 {
		cell.DocsPerSimSec = float64(d.Docs) / (float64(cell.ElapsedSimMS) / 1000)
	}
	return cell, nil
}

func runCellLocal(cell *Cell, d *TrackDataset, pspec *serve.Spec, par, parts int, corpusPath string) error {
	ctx, err := pz.NewContext(pz.Config{
		Parallelism: par, Partitions: parts,
		EstimatePriors: d.priors(),
	})
	if err != nil {
		return err
	}
	src, err := ctx.RegisterNDJSON(d.Name, corpusPath)
	if err != nil {
		return err
	}
	ds, err := pspec.Build(ctx)
	if err != nil {
		return err
	}
	pol, err := pspec.ParsePolicy()
	if err != nil {
		return err
	}
	res, err := ctx.Execute(ds, pol)
	if err != nil {
		return err
	}
	cell.Records = len(res.Records)
	cell.Candidates = res.Candidates
	cell.ElapsedSimMS = res.Elapsed.Milliseconds()
	cell.CostUSD = res.CostUSD
	cell.Trace = summarizeTrace(res.Trace)
	if pred := leadingFilter(d.Ops); pred != "" {
		inputs, err := src.Records()
		if err != nil {
			return err
		}
		q := metrics.FilterQualityByTruth(inputs, res.Records, pred)
		cell.Quality = &Quality{
			Precision: q.Precision, Recall: q.Recall, F1: q.F1,
			TP: q.TP, FP: q.FP, FN: q.FN,
		}
	}
	return nil
}

// leadingFilter returns the predicate of the pipeline's first filter op,
// the one whose quality-vs-truth the trajectory records.
func leadingFilter(ops []serve.OpSpec) string {
	if len(ops) > 0 && strings.EqualFold(ops[0].Op, "filter") {
		return ops[0].Predicate
	}
	return ""
}

// runCellServer executes the cell against a running pzserve. The server
// sees the corpus path, not truth-bearing records, so Quality stays nil.
func runCellServer(cell *Cell, pspec *serve.Spec, url string) error {
	body, err := json.Marshal(pspec)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(url, "/")+"/v1/query?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var view struct {
		ID     string             `json:"id"`
		Status string             `json:"status"`
		Error  string             `json:"error"`
		Result *serve.QueryResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return fmt.Errorf("decode server response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK || view.Result == nil {
		return fmt.Errorf("server returned HTTP %d (status %q, error %q)", resp.StatusCode, view.Status, view.Error)
	}
	cell.Records = view.Result.Count
	cell.Candidates = view.Result.Candidates
	cell.ElapsedSimMS = view.Result.ElapsedSimMS
	cell.CostUSD = view.Result.CostUSD
	// The trace digest is best-effort in server mode — the cell still
	// measures without one — but the reason it is missing is recorded on
	// the cell and warned about, not swallowed.
	if cell.Trace, err = fetchCellTrace(url, view.ID); err != nil {
		cell.TraceError = err.Error()
		fmt.Fprintf(os.Stderr, "bench: warning: %s: trace fetch failed: %v\n", cell.Dataset, err)
	}
	return nil
}

// fetchCellTrace retrieves and digests a completed job's trace. The error
// says why no digest came back (old daemon, HTTP failure, bad payload).
func fetchCellTrace(url, jobID string) (*TraceSummary, error) {
	if jobID == "" {
		return nil, fmt.Errorf("server response carried no job id")
	}
	resp, err := http.Get(strings.TrimRight(url, "/") + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/jobs/%s/trace returned HTTP %d", jobID, resp.StatusCode)
	}
	var doc trace.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode trace document: %w", err)
	}
	return summarizeTrace(doc.Trace), nil
}
