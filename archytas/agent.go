package archytas

import (
	"fmt"
	"strings"
	"time"
)

// Step is one ReAct iteration: Thought (why this tool), Action (the tool
// and its arguments), Observation (the tool's result).
type Step struct {
	// Thought explains the tool choice.
	Thought string
	// Action names the invoked tool.
	Action string
	// Args are the invocation arguments.
	Args map[string]any
	// Code is the rendered tool template for this invocation.
	Code string
	// Observation is the tool's output (or error text).
	Observation string
	// Err is the tool error, if any.
	Err error
	// Elapsed is the wall-clock duration of the tool call.
	Elapsed time.Duration
}

// String renders the step as a ReAct trace block.
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Thought: %s\n", s.Thought)
	fmt.Fprintf(&b, "Action: %s(%s)\n", s.Action, renderArgs(s.Args))
	if s.Err != nil {
		fmt.Fprintf(&b, "Observation: ERROR: %v\n", s.Err)
	} else {
		fmt.Fprintf(&b, "Observation: %s\n", s.Observation)
	}
	return b.String()
}

func renderArgs(args map[string]any) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, args[k]))
	}
	return strings.Join(parts, ", ")
}

// Agent is a ReAct agent over a toolbox and a shared environment.
type Agent struct {
	toolbox *Toolbox
	env     *Env
	trace   []Step
	// SimilarityFloor is the minimum docstring similarity for routing an
	// utterance with no extractable tool (default 0.05).
	SimilarityFloor float64
	// MaxSteps bounds tool invocations per request (default 8).
	MaxSteps int
}

// NewAgent builds an agent.
func NewAgent(tb *Toolbox, env *Env) (*Agent, error) {
	if tb == nil || env == nil {
		return nil, fmt.Errorf("archytas: agent needs toolbox and env")
	}
	return &Agent{toolbox: tb, env: env, SimilarityFloor: 0.05, MaxSteps: 8}, nil
}

// Env exposes the agent's environment.
func (a *Agent) Env() *Env { return a.env }

// Toolbox exposes the agent's toolbox.
func (a *Agent) Toolbox() *Toolbox { return a.toolbox }

// Trace returns all steps taken so far, in order.
func (a *Agent) Trace() []Step {
	out := make([]Step, len(a.trace))
	copy(out, a.trace)
	return out
}

// Invoke runs a named tool directly (the expert path: "expert users can
// either further iterate on the code produced using the chat interface, or
// program their pipelines directly").
func (a *Agent) Invoke(toolName string, args map[string]any) (Step, error) {
	tool, err := a.toolbox.Get(toolName)
	if err != nil {
		return Step{}, err
	}
	step := a.runTool(fmt.Sprintf("the user asked for %s directly", toolName), tool, args)
	return step, step.Err
}

// Handle processes one natural-language request: it decomposes the
// utterance into segments, routes each to a tool, invokes the chain, and
// returns the steps taken ("the reasoning Archytas agent can decide to
// chain several tool invocations if it deems it necessary to fulfill the
// desired request").
func (a *Agent) Handle(utterance string) ([]Step, error) {
	segments := Decompose(utterance)
	if len(segments) == 0 {
		return nil, fmt.Errorf("archytas: empty request")
	}
	if len(segments) > a.MaxSteps {
		segments = segments[:a.MaxSteps]
	}
	var steps []Step
	for _, seg := range segments {
		best := a.toolbox.Best(seg, a.SimilarityFloor)
		if best == nil {
			step := Step{
				Thought:     fmt.Sprintf("no tool matches %q", seg),
				Action:      "none",
				Observation: "I don't have a tool for that. Available tools:\n" + a.toolbox.Describe(),
			}
			a.trace = append(a.trace, step)
			steps = append(steps, step)
			continue
		}
		thought := fmt.Sprintf("%q looks like a job for %s (similarity %.2f)",
			seg, best.Tool.Name, best.Similarity)
		step := a.runTool(thought, best.Tool, best.Args)
		steps = append(steps, step)
		if step.Err != nil {
			return steps, fmt.Errorf("archytas: %s: %w", best.Tool.Name, step.Err)
		}
	}
	return steps, nil
}

func (a *Agent) runTool(thought string, tool *Tool, args map[string]any) Step {
	if args == nil {
		args = map[string]any{}
	}
	step := Step{Thought: thought, Action: tool.Name, Args: args}
	start := time.Now()
	defer func() { step.Elapsed = time.Since(start) }()

	if err := tool.CheckArgs(args); err != nil {
		step.Err = err
		a.trace = append(a.trace, step)
		return step
	}
	if code, err := tool.RenderCode(a.env, args); err == nil {
		step.Code = code
	} else {
		// Missing template variables are tool-author errors, surfaced in
		// the observation but not fatal to execution.
		step.Code = "# template error: " + err.Error()
	}
	obs, err := tool.Run(a.env, args)
	step.Observation = obs
	step.Err = err
	a.trace = append(a.trace, step)
	return step
}

// chainMarkers split a compound request into sequential sub-requests. " and "
// splits only before an action verb, so predicates like "gene mutation and
// tumor cells" stay intact.
var chainMarkers = []string{"; ", ". ", ", then ", " then ", " and then ", " after that ", " afterwards "}

var actionVerbs = []string{
	"load", "register", "upload", "use", "create", "make", "define", "generate",
	"filter", "keep", "select", "extract", "convert", "pull", "set", "optimize",
	"run", "execute", "show", "display", "give", "tell", "report", "export",
	"download", "list", "restore", "save",
}

// Decompose splits a compound utterance into sequential tool-sized
// segments.
func Decompose(utterance string) []string {
	text := strings.TrimSpace(utterance)
	if text == "" {
		return nil
	}
	segs := []string{text}
	for _, m := range chainMarkers {
		var next []string
		for _, s := range segs {
			next = append(next, strings.Split(s, m)...)
		}
		segs = next
	}
	// Conditional " and " split: only when the clause after "and" starts
	// with an action verb (optionally after "for these"/"for those"/
	// "please").
	var out []string
	for _, s := range segs {
		out = append(out, splitOnActionAnd(s)...)
	}
	var clean []string
	for _, s := range out {
		s = strings.Trim(strings.TrimSpace(s), ".!")
		if s != "" {
			clean = append(clean, s)
		}
	}
	return clean
}

func splitOnActionAnd(s string) []string {
	lower := strings.ToLower(s)
	idx := 0
	for {
		i := strings.Index(lower[idx:], " and ")
		if i < 0 {
			return []string{s}
		}
		after := strings.TrimSpace(lower[idx+i+5:])
		stripped := 0
		for _, lead := range []string{"for these ", "for those ", "for them ", "please ", "also ", "i want to ", "i would like to "} {
			if strings.HasPrefix(after, lead) {
				after = after[len(lead):]
				stripped += len(lead)
			}
		}
		for _, v := range actionVerbs {
			if strings.HasPrefix(after, v+" ") || after == v {
				left := strings.TrimSpace(s[:idx+i])
				right := strings.TrimSpace(s[idx+i+5:])
				right = strings.TrimSpace(right[min(stripped, len(right)):])
				return append([]string{left}, splitOnActionAnd(right)...)
			}
		}
		idx += i + 5
	}
}
