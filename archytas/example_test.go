package archytas_test

import (
	"fmt"
	"log"
	"strings"

	"repro/archytas"
	"repro/internal/tmpl"
)

// Example builds a tiny toolbox and lets the ReAct agent decompose a
// compound request into chained tool invocations.
func Example() {
	tb := archytas.NewToolbox()
	tb.MustRegister(&archytas.Tool{
		Name:     "greet",
		Doc:      "Greet a person by name.",
		Examples: []string{"say hello to Ada"},
		Template: tmpl.MustParse(`greet("{{ name }}")`),
		Extract: func(u string) (map[string]any, bool) {
			if i := strings.Index(u, "hello to "); i >= 0 {
				return map[string]any{"name": strings.TrimSpace(u[i+9:])}, true
			}
			return nil, false
		},
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			return "Hello, " + args["name"].(string) + "!", nil
		},
	})
	tb.MustRegister(&archytas.Tool{
		Name:     "count_tools",
		Doc:      "Count the registered tools.",
		Examples: []string{"how many tools are there"},
		Extract: func(u string) (map[string]any, bool) {
			return nil, strings.Contains(u, "how many tools")
		},
		Run: func(env *archytas.Env, args map[string]any) (string, error) {
			return fmt.Sprintf("There are %d tools.", tb.Len()), nil
		},
	})

	agent, err := archytas.NewAgent(tb, archytas.NewEnv())
	if err != nil {
		log.Fatal(err)
	}
	steps, err := agent.Handle("say hello to Ada, then how many tools are there")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		fmt.Println(s.Observation)
	}
	// Output:
	// Hello, Ada!
	// There are 2 tools.
}

// ExampleDecompose shows compound-request splitting: " and " only splits
// before an action verb, so noun phrases stay intact.
func ExampleDecompose() {
	for _, seg := range archytas.Decompose(
		"filter papers about gene mutation and tumor cells and extract the datasets") {
		fmt.Println(seg)
	}
	// Output:
	// filter papers about gene mutation and tumor cells
	// extract the datasets
}
