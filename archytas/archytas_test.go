package archytas

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tmpl"
)

// testTool builds a minimal working tool.
func testTool(name, doc string, examples ...string) *Tool {
	return &Tool{
		Name:     name,
		Doc:      doc,
		Examples: examples,
		Run: func(env *Env, args map[string]any) (string, error) {
			return "ran " + name, nil
		},
	}
}

func TestToolValidate(t *testing.T) {
	good := testTool("ok_tool", "Does a thing.")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Tool{
		{Doc: "x", Run: good.Run},
		{Name: "has space", Doc: "x", Run: good.Run},
		{Name: "no_doc", Run: good.Run},
		{Name: "no_run", Doc: "x"},
		{Name: "dup_param", Doc: "x", Run: good.Run, Params: []Param{{Name: "a"}, {Name: "a"}}},
		{Name: "unnamed_param", Doc: "x", Run: good.Run, Params: []Param{{}}},
	}
	for i, tool := range bad {
		if err := tool.Validate(); err == nil {
			t.Errorf("bad tool %d validated", i)
		}
	}
}

func TestCheckArgs(t *testing.T) {
	tool := &Tool{
		Name: "t", Doc: "d",
		Params: []Param{
			{Name: "s", Required: true, Kind: ParamString},
			{Name: "l", Kind: ParamStringList},
			{Name: "n", Kind: ParamNumber},
		},
		Run: func(*Env, map[string]any) (string, error) { return "", nil },
	}
	if err := tool.CheckArgs(map[string]any{"s": "x", "l": []string{"a"}, "n": 3}); err != nil {
		t.Fatal(err)
	}
	if err := tool.CheckArgs(map[string]any{"s": "x", "n": 2.5}); err != nil {
		t.Fatal(err)
	}
	cases := []map[string]any{
		{},                          // missing required
		{"s": 7},                    // wrong kind
		{"s": "x", "l": "not-list"}, // wrong kind
		{"s": "x", "n": "NaN"},      // wrong kind
	}
	for i, args := range cases {
		if err := tool.CheckArgs(args); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRenderCodeFigure2(t *testing.T) {
	tool := &Tool{
		Name: "create_schema",
		Doc:  "Generate a new extraction schema.",
		Template: tmpl.MustParse(
			`class_name = "{{ schema_name }}"
fields = [{{ field_names|join:", " }}]`),
		Run: func(*Env, map[string]any) (string, error) { return "", nil },
	}
	env := NewEnv()
	code, err := tool.RenderCode(env, map[string]any{
		"schema_name": "Author",
		"field_names": []string{"name", "email"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, `class_name = "Author"`) || !strings.Contains(code, "name, email") {
		t.Errorf("code = %q", code)
	}
	// Args shadow env.
	env.Set("schema_name", "FromEnv")
	code, _ = tool.RenderCode(env, map[string]any{"schema_name": "FromArgs", "field_names": []string{}})
	if !strings.Contains(code, "FromArgs") {
		t.Errorf("args did not shadow env: %q", code)
	}
}

func TestEnvBasics(t *testing.T) {
	env := NewEnv()
	env.Set("a", 1)
	env.Set("b", "two")
	if v, ok := env.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	if env.GetString("b") != "two" || env.GetString("missing") != "" {
		t.Error("GetString wrong")
	}
	if got := env.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Names = %v", got)
	}
	snap := env.Snapshot()
	env.Set("a", 99)
	if snap["a"] != 1 {
		t.Error("snapshot not isolated")
	}
	env.Delete("a")
	if _, ok := env.Get("a"); ok {
		t.Error("Delete failed")
	}
}

func TestToolboxRegisterAndGet(t *testing.T) {
	tb := NewToolbox()
	if err := tb.Register(testTool("alpha", "First tool.")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Register(testTool("alpha", "Duplicate.")); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := tb.Get("alpha"); err != nil {
		t.Error(err)
	}
	if _, err := tb.Get("nope"); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Errorf("missing-tool error should list tools: %v", err)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestRouteByDocstring(t *testing.T) {
	tb := NewToolbox()
	tb.MustRegister(testTool("load_dataset",
		"Register an input dataset from a local folder of files.",
		"load the papers from ./pdfs", "use the folder ./data as input dataset"))
	tb.MustRegister(testTool("filter_dataset",
		"Filter the dataset records with a natural language predicate condition.",
		"keep only papers about colorectal cancer", "filter for contracts with indemnification"))
	tb.MustRegister(testTool("execute_pipeline",
		"Run the pipeline and produce output records.",
		"run the pipeline", "execute the workload"))

	cases := map[string]string{
		"filter for papers about colorectal cancer": "filter_dataset",
		"load my dataset from the folder ./papers":  "load_dataset",
		"run the pipeline now":                      "execute_pipeline",
	}
	for utt, want := range cases {
		scores := tb.Route(utt)
		if scores[0].Tool.Name != want {
			t.Errorf("Route(%q) = %s, want %s", utt, scores[0].Tool.Name, want)
		}
	}
}

func TestRouteExtractablePreferred(t *testing.T) {
	tb := NewToolbox()
	decoy := testTool("decoy", "Filter filter filter everything filter.")
	tb.MustRegister(decoy)
	target := testTool("real_filter", "Unrelated words entirely.")
	target.Extract = func(u string) (map[string]any, bool) {
		if strings.Contains(u, "filter") {
			return map[string]any{"predicate": u}, true
		}
		return nil, false
	}
	tb.MustRegister(target)
	scores := tb.Route("please filter the things")
	if scores[0].Tool.Name != "real_filter" {
		t.Fatalf("extractable tool not preferred: %s", scores[0].Tool.Name)
	}
	if scores[0].Args["predicate"] == "" {
		t.Error("extracted args missing")
	}
}

func TestBestFloor(t *testing.T) {
	tb := NewToolbox()
	tb.MustRegister(testTool("zeta", "Completely unrelated documentation text."))
	if best := tb.Best("quantum entanglement surfboard", 0.5); best != nil {
		t.Errorf("Best cleared floor: %+v", best)
	}
	if best := tb.Best("completely unrelated documentation", 0.05); best == nil {
		t.Error("Best missed obvious match")
	}
}

func TestWithoutExamplesChangesRouting(t *testing.T) {
	build := func(examples bool) *Toolbox {
		tb := NewToolbox()
		if !examples {
			tb.WithoutExamples()
		}
		// Docstring alone is misleading; examples carry the signal.
		tb.MustRegister(testTool("tool_a", "Performs operation alpha on data.",
			"find the colorectal cancer papers"))
		tb.MustRegister(testTool("tool_b", "Performs operation beta on data.",
			"compute the average price"))
		return tb
	}
	utt := "find colorectal cancer papers"
	with := build(true).Route(utt)
	without := build(false).Route(utt)
	if with[0].Tool.Name != "tool_a" {
		t.Errorf("with examples routed to %s", with[0].Tool.Name)
	}
	if without[0].Similarity >= with[0].Similarity && with[0].Tool.Name != without[0].Tool.Name {
		t.Log("routing degraded without examples, as expected")
	}
	// Without examples the two tools are indistinguishable: similarity of
	// the winner must drop.
	if without[0].Similarity >= with[0].Similarity {
		t.Errorf("similarity without examples (%.3f) not lower than with (%.3f)",
			without[0].Similarity, with[0].Similarity)
	}
}

func TestAgentInvokeDirect(t *testing.T) {
	tb := NewToolbox()
	called := false
	tool := testTool("direct", "Direct tool.")
	tool.Run = func(env *Env, args map[string]any) (string, error) {
		called = true
		env.Set("ran", true)
		return "done", nil
	}
	tb.MustRegister(tool)
	ag, err := NewAgent(tb, NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	step, err := ag.Invoke("direct", nil)
	if err != nil || !called || step.Observation != "done" {
		t.Fatalf("step = %+v, err = %v", step, err)
	}
	if v, _ := ag.Env().Get("ran"); v != true {
		t.Error("tool did not mutate env")
	}
	if _, err := ag.Invoke("missing", nil); err == nil {
		t.Error("missing tool accepted")
	}
	if len(ag.Trace()) != 1 {
		t.Errorf("trace = %d", len(ag.Trace()))
	}
}

func TestAgentHandleChainsTools(t *testing.T) {
	tb := NewToolbox()
	var order []string
	mk := func(name, doc string, trigger string) *Tool {
		tool := testTool(name, doc)
		tool.Extract = func(u string) (map[string]any, bool) {
			if strings.Contains(strings.ToLower(u), trigger) {
				return map[string]any{"seg": u}, true
			}
			return nil, false
		}
		tool.Run = func(env *Env, args map[string]any) (string, error) {
			order = append(order, name)
			return name + " ok", nil
		}
		return tool
	}
	tb.MustRegister(mk("filter_tool", "Filter records by a condition.", "filter"))
	tb.MustRegister(mk("extract_tool", "Extract structured fields from records.", "extract"))
	tb.MustRegister(mk("run_tool", "Run the pipeline.", "run"))

	ag, _ := NewAgent(tb, NewEnv())
	steps, err := ag.Handle("filter the papers about cancer, then extract the datasets and run the pipeline")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"filter_tool", "extract_tool", "run_tool"}) {
		t.Fatalf("invocation order = %v", order)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	for _, s := range steps {
		if s.Thought == "" || s.Observation == "" {
			t.Errorf("incomplete ReAct step: %+v", s)
		}
	}
}

func TestAgentHandleErrorStopsChain(t *testing.T) {
	tb := NewToolbox()
	boom := testTool("boom_tool", "Always fails loudly.")
	boom.Extract = func(u string) (map[string]any, bool) { return nil, strings.Contains(u, "boom") }
	boom.Run = func(*Env, map[string]any) (string, error) { return "", fmt.Errorf("kaboom") }
	after := testTool("after_tool", "Runs after.")
	after.Extract = func(u string) (map[string]any, bool) { return nil, strings.Contains(u, "after") }
	tb.MustRegister(boom)
	tb.MustRegister(after)
	ag, _ := NewAgent(tb, NewEnv())
	steps, err := ag.Handle("boom; after")
	if err == nil {
		t.Fatal("chain error swallowed")
	}
	if len(steps) != 1 {
		t.Errorf("steps after failure = %d", len(steps))
	}
}

func TestAgentHandleNoMatch(t *testing.T) {
	tb := NewToolbox()
	tb.MustRegister(testTool("misc", "Totally different domain."))
	ag, _ := NewAgent(tb, NewEnv())
	ag.SimilarityFloor = 0.9
	steps, err := ag.Handle("pet the hamster")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Action != "none" {
		t.Fatalf("steps = %+v", steps)
	}
	if !strings.Contains(steps[0].Observation, "misc") {
		t.Error("fallback should list tools")
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, NewEnv()); err == nil {
		t.Error("nil toolbox accepted")
	}
	if _, err := NewAgent(NewToolbox(), nil); err == nil {
		t.Error("nil env accepted")
	}
	ag, _ := NewAgent(NewToolbox(), NewEnv())
	if _, err := ag.Handle("   "); err == nil {
		t.Error("empty utterance accepted")
	}
}

func TestDecompose(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"run the pipeline", []string{"run the pipeline"}},
		{"filter papers; run it", []string{"filter papers", "run it"}},
		{"filter papers, then extract datasets", []string{"filter papers", "extract datasets"}},
		{
			"keep papers about gene mutation and tumor cells",
			[]string{"keep papers about gene mutation and tumor cells"},
		},
		{
			"filter for colorectal cancer and extract the datasets",
			[]string{"filter for colorectal cancer", "extract the datasets"},
		},
		{
			"filter for cancer and for these extract the datasets",
			[]string{"filter for cancer", "extract the datasets"},
		},
		{"", nil},
		{"  .  ", nil},
	}
	for _, c := range cases {
		if got := Decompose(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decompose(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStepString(t *testing.T) {
	s := Step{Thought: "t", Action: "a", Args: map[string]any{"z": 1, "b": "x"}, Observation: "obs"}
	out := s.String()
	for _, want := range []string{"Thought: t", "Action: a(b=x, z=1)", "Observation: obs"} {
		if !strings.Contains(out, want) {
			t.Errorf("step string missing %q: %s", want, out)
		}
	}
	e := Step{Thought: "t", Action: "a", Err: fmt.Errorf("bad")}
	if !strings.Contains(e.String(), "ERROR: bad") {
		t.Error("error not rendered")
	}
}

func TestDocTextIncludesArgsAndExamples(t *testing.T) {
	tool := &Tool{
		Name: "create_schema", Doc: "Generate a new extraction schema.",
		Params:   []Param{{Name: "schema_name", Desc: "Name for the schema"}},
		Examples: []string{"create a schema called Author"},
		Run:      func(*Env, map[string]any) (string, error) { return "", nil },
	}
	with := tool.DocText(true)
	without := tool.DocText(false)
	if !strings.Contains(with, "schema_name") || !strings.Contains(with, "create a schema called Author") {
		t.Errorf("DocText(true) = %q", with)
	}
	if strings.Contains(without, "create a schema called Author") {
		t.Error("DocText(false) kept examples")
	}
}

func TestToolboxDescribe(t *testing.T) {
	tb := NewToolbox()
	tb.MustRegister(testTool("one_tool", "Does one thing. And more detail."))
	d := tb.Describe()
	if !strings.Contains(d, "one_tool — Does one thing.") {
		t.Errorf("Describe = %q", d)
	}
}

func TestMaxStepsBounds(t *testing.T) {
	tb := NewToolbox()
	n := 0
	tool := testTool("counter", "Counts invocations of itself.")
	tool.Extract = func(string) (map[string]any, bool) { return nil, true }
	tool.Run = func(*Env, map[string]any) (string, error) { n++; return "ok", nil }
	tb.MustRegister(tool)
	ag, _ := NewAgent(tb, NewEnv())
	ag.MaxSteps = 2
	if _, err := ag.Handle("a; b; c; d; e"); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("invocations = %d, want 2", n)
	}
}
