package archytas

import (
	"strings"
	"testing"
	"testing/quick"
)

// Decompose invariants: no empty segments, bounded count, and every
// segment's content words come from the input.
func TestDecomposeProperties(t *testing.T) {
	f := func(s string) bool {
		segs := Decompose(s)
		total := 0
		for _, seg := range segs {
			if strings.TrimSpace(seg) == "" {
				return false
			}
			total += len(seg)
		}
		// Splitting only removes separators; it never adds content.
		return total <= len(s)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Single-verb utterances never split.
func TestDecomposeSingleSegmentStable(t *testing.T) {
	for _, s := range []string{
		"run the pipeline",
		"filter for papers about cancer",
		"show me the records",
	} {
		if got := Decompose(s); len(got) != 1 || got[0] != s {
			t.Errorf("Decompose(%q) = %v", s, got)
		}
	}
}

// Route is deterministic and total over the toolbox.
func TestRouteDeterministicAndTotal(t *testing.T) {
	tb := NewToolbox()
	tb.MustRegister(testTool("alpha_tool", "Loads data from folders."))
	tb.MustRegister(testTool("beta_tool", "Filters records by conditions."))
	tb.MustRegister(testTool("gamma_tool", "Runs pipelines to completion."))
	f := func(u string) bool {
		a, b := tb.Route(u), tb.Route(u)
		if len(a) != tb.Len() || len(b) != tb.Len() {
			return false
		}
		for i := range a {
			if a[i].Tool.Name != b[i].Tool.Name || a[i].Similarity != b[i].Similarity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
