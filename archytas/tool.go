// Package archytas implements the Archytas reasoning-agent framework the
// paper builds PalimpChat on (§2.2): "a toolbox for enabling LLM agents to
// interact with various tools ... following the ReAct (Reason & Action)
// paradigm. ... By implementing ReAct, an agent can decompose a user
// request into smaller steps, decide which tools to invoke for each step,
// provide corresponding input to those tools, and iterate until the task is
// complete."
//
// Tools are documented, templated code snippets (paper Figure 2): the
// docstring drives tool selection, an Args section documents parameters,
// and a {{variable}} template renders the code the invocation corresponds
// to (which PalimpChat accumulates into a notebook). The reasoning LLM is
// replaced by a deterministic planner (see DESIGN.md substitutions): tool
// routing scores utterances against docstrings with tf-idf similarity, and
// per-tool slot extractors parse arguments, so the ReAct loop, docstring-
// driven selection, chaining, and template injection are exercised exactly
// as in the paper, reproducibly.
package archytas

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tmpl"
)

// ParamKind types a tool parameter.
type ParamKind int

// Parameter kinds.
const (
	// ParamString is a free-text parameter.
	ParamString ParamKind = iota
	// ParamStringList is a list of strings (e.g. field names).
	ParamStringList
	// ParamNumber is a numeric parameter.
	ParamNumber
)

// Param documents one tool parameter (the docstring's Args section).
type Param struct {
	// Name is the parameter name as passed in invocation args.
	Name string
	// Desc describes the parameter for the reasoning agent.
	Desc string
	// Required marks parameters the planner must fill.
	Required bool
	// Kind types the parameter.
	Kind ParamKind
}

// Tool is one registered capability. All tools follow the paper's pattern:
// "The general docstring of a tool summarizes what each tool accomplishes
// and when it is appropriate to use. The Args section ... describe[s] the
// input and output arguments ... Providing a few examples of usage within
// the docstring proved to be the most efficient solution to improve the
// quality of the reasoning agent."
type Tool struct {
	// Name identifies the tool ("create_schema").
	Name string
	// Doc is the tool summary docstring.
	Doc string
	// Examples are sample utterances this tool should handle; they join
	// the docstring for routing (and can be ablated, experiment E8).
	Examples []string
	// Params documents the arguments.
	Params []Param
	// Template is the Jinja-style code snippet rendered per invocation.
	Template *tmpl.Template
	// Extract parses tool arguments from an utterance segment. It reports
	// ok=false when the utterance does not look like a request for this
	// tool. A nil Extract means the tool is only invoked explicitly.
	Extract func(utterance string) (args map[string]any, ok bool)
	// Run executes the tool against the shared environment.
	Run func(env *Env, args map[string]any) (observation string, err error)
}

// DocText returns the routing text of the tool: docstring, parameter
// descriptions, and (unless stripped) the usage examples.
func (t *Tool) DocText(includeExamples bool) string {
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteString(" ")
	b.WriteString(strings.ReplaceAll(t.Name, "_", " "))
	b.WriteString("\n")
	b.WriteString(t.Doc)
	b.WriteString("\nArgs:\n")
	for _, p := range t.Params {
		fmt.Fprintf(&b, "  %s: %s\n", p.Name, p.Desc)
	}
	if includeExamples && len(t.Examples) > 0 {
		b.WriteString("Examples:\n")
		for _, e := range t.Examples {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}

// Validate checks the tool's static declaration.
func (t *Tool) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("archytas: tool without name")
	}
	if strings.ContainsAny(t.Name, " \t\n") {
		return fmt.Errorf("archytas: tool name %q contains whitespace", t.Name)
	}
	if t.Doc == "" {
		return fmt.Errorf("archytas: tool %s without docstring", t.Name)
	}
	if t.Run == nil {
		return fmt.Errorf("archytas: tool %s without Run", t.Name)
	}
	seen := map[string]bool{}
	for _, p := range t.Params {
		if p.Name == "" {
			return fmt.Errorf("archytas: tool %s has unnamed parameter", t.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("archytas: tool %s duplicates parameter %q", t.Name, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// CheckArgs verifies required parameters are present and typed acceptably.
func (t *Tool) CheckArgs(args map[string]any) error {
	for _, p := range t.Params {
		v, ok := args[p.Name]
		if !ok || v == nil {
			if p.Required {
				return fmt.Errorf("archytas: tool %s: missing required argument %q", t.Name, p.Name)
			}
			continue
		}
		switch p.Kind {
		case ParamString:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("archytas: tool %s: argument %q must be a string", t.Name, p.Name)
			}
		case ParamStringList:
			if _, ok := v.([]string); !ok {
				return fmt.Errorf("archytas: tool %s: argument %q must be a string list", t.Name, p.Name)
			}
		case ParamNumber:
			switch v.(type) {
			case float64, int:
			default:
				return fmt.Errorf("archytas: tool %s: argument %q must be a number", t.Name, p.Name)
			}
		}
	}
	return nil
}

// RenderCode renders the tool's code template with the invocation args laid
// over the environment (args shadow env bindings).
func (t *Tool) RenderCode(env *Env, args map[string]any) (string, error) {
	if t.Template == nil {
		return "", nil
	}
	e := env.Snapshot()
	for k, v := range args {
		e[k] = v
	}
	return t.Template.Render(e)
}

// Env is the shared runtime variable environment (the paper's "Python
// execution environment" whose variables fill {{templates}}). Safe for
// concurrent use.
type Env struct {
	mu   sync.RWMutex
	vars tmpl.Env
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{vars: tmpl.Env{}} }

// Set binds a variable.
func (e *Env) Set(name string, v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.vars[name] = v
}

// Get reads a variable.
func (e *Env) Get(name string) (any, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.vars[name]
	return v, ok
}

// GetString reads a variable as a string ("" when unbound).
func (e *Env) GetString(name string) string {
	v, ok := e.Get(name)
	if !ok {
		return ""
	}
	return tmpl.Stringify(v)
}

// Delete removes a binding.
func (e *Env) Delete(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.vars, name)
}

// Names returns the sorted bound variable names.
func (e *Env) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of the bindings as a template environment.
func (e *Env) Snapshot() tmpl.Env {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.vars.Clone()
}
