package archytas

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/textutil"
)

// Toolbox holds the registered tools and routes utterances to them by
// docstring similarity ("The Archytas agent will read tool code as natural
// language, and consider its doc-string and input/output parameters in
// order to decide whether to use it").
type Toolbox struct {
	tools map[string]*Tool
	order []string
	// includeExamples controls whether docstring examples join the routing
	// text (ablated by experiment E8).
	includeExamples bool
}

// NewToolbox returns an empty toolbox (examples included in routing).
func NewToolbox() *Toolbox {
	return &Toolbox{tools: map[string]*Tool{}, includeExamples: true}
}

// WithoutExamples disables docstring examples in routing text; returns the
// toolbox for chaining.
func (tb *Toolbox) WithoutExamples() *Toolbox {
	tb.includeExamples = false
	return tb
}

// Register adds a tool. Duplicate names are an error.
func (tb *Toolbox) Register(t *Tool) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := tb.tools[t.Name]; dup {
		return fmt.Errorf("archytas: tool %q already registered", t.Name)
	}
	tb.tools[t.Name] = t
	tb.order = append(tb.order, t.Name)
	return nil
}

// MustRegister is Register that panics on error; for static tool sets.
func (tb *Toolbox) MustRegister(t *Tool) {
	if err := tb.Register(t); err != nil {
		panic(err)
	}
}

// Get returns the named tool.
func (tb *Toolbox) Get(name string) (*Tool, error) {
	t, ok := tb.tools[name]
	if !ok {
		return nil, fmt.Errorf("archytas: no tool %q (have: %s)", name, strings.Join(tb.Names(), ", "))
	}
	return t, nil
}

// Names returns tool names in registration order.
func (tb *Toolbox) Names() []string {
	out := make([]string, len(tb.order))
	copy(out, tb.order)
	return out
}

// Len returns the number of registered tools.
func (tb *Toolbox) Len() int { return len(tb.tools) }

// Score is one routing candidate.
type Score struct {
	// Tool is the candidate.
	Tool *Tool
	// Similarity is the docstring tf-idf cosine against the utterance.
	Similarity float64
	// Extractable reports whether the tool's slot extractor accepted the
	// utterance.
	Extractable bool
	// Args are the extracted arguments when Extractable.
	Args map[string]any
}

// Route ranks all tools against an utterance: extractable tools first, then
// by docstring similarity, then registration order for determinism.
func (tb *Toolbox) Route(utterance string) []Score {
	corpus := textutil.NewCorpus(nil)
	docs := make(map[string]string, len(tb.tools))
	for _, name := range tb.order {
		d := tb.tools[name].DocText(tb.includeExamples)
		docs[name] = d
		corpus.Add(d)
	}
	corpus.Add(utterance)

	scores := make([]Score, 0, len(tb.order))
	for _, name := range tb.order {
		t := tb.tools[name]
		s := Score{Tool: t, Similarity: corpus.Similarity(utterance, docs[name])}
		if t.Extract != nil {
			if args, ok := t.Extract(utterance); ok {
				s.Extractable = true
				s.Args = args
			}
		}
		scores = append(scores, s)
	}
	pos := map[string]int{}
	for i, n := range tb.order {
		pos[n] = i
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Extractable != scores[j].Extractable {
			return scores[i].Extractable
		}
		if scores[i].Similarity != scores[j].Similarity {
			return scores[i].Similarity > scores[j].Similarity
		}
		return pos[scores[i].Tool.Name] < pos[scores[j].Tool.Name]
	})
	return scores
}

// RouteByDoc ranks tools purely by docstring similarity, ignoring slot
// extractors. This is the paper's docstring-driven selection in isolation;
// experiment E8 uses it to measure the contribution of docstring examples.
func (tb *Toolbox) RouteByDoc(utterance string) []Score {
	corpus := textutil.NewCorpus(nil)
	docs := make(map[string]string, len(tb.tools))
	for _, name := range tb.order {
		d := tb.tools[name].DocText(tb.includeExamples)
		docs[name] = d
		corpus.Add(d)
	}
	corpus.Add(utterance)
	scores := make([]Score, 0, len(tb.order))
	for _, name := range tb.order {
		scores = append(scores, Score{
			Tool:       tb.tools[name],
			Similarity: corpus.Similarity(utterance, docs[name]),
		})
	}
	pos := map[string]int{}
	for i, n := range tb.order {
		pos[n] = i
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Similarity != scores[j].Similarity {
			return scores[i].Similarity > scores[j].Similarity
		}
		return pos[scores[i].Tool.Name] < pos[scores[j].Tool.Name]
	})
	return scores
}

// Best returns the top routing candidate, or nil when the toolbox is empty
// or nothing clears the similarity floor.
func (tb *Toolbox) Best(utterance string, floor float64) *Score {
	scores := tb.Route(utterance)
	if len(scores) == 0 {
		return nil
	}
	top := scores[0]
	if !top.Extractable && top.Similarity < floor {
		return nil
	}
	return &top
}

// Describe renders the toolbox as a help listing.
func (tb *Toolbox) Describe() string {
	var b strings.Builder
	for _, name := range tb.order {
		t := tb.tools[name]
		fmt.Fprintf(&b, "%s — %s\n", name, firstSentence(t.Doc))
	}
	return b.String()
}

func firstSentence(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '.'); i > 0 {
		return s[:i+1]
	}
	return s
}
