package pz

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
)

// reoptPredicates pairs every corpus domain with a (broad, narrow)
// natural-language filter pair. The broad predicate matches a topic every
// generated document carries, so it keeps (nearly) the whole corpus; the
// narrow predicate matches the domain's gold label and keeps only the
// positive class. Inverted priors (broad believed selective, narrow
// believed permissive) make the optimizer start on the costlier
// broad-first order — the exact mis-estimation mid-flight
// re-optimization exists to recover from.
var reoptPredicates = map[string]struct{ broad, narrow string }{
	corpus.DomainBiomed: {
		broad:  "The papers are about colorectal cancer",
		narrow: "The paper cites public datasets",
	},
	corpus.DomainLegal: {
		broad:  "The document is a contract",
		narrow: "The contract contains an indemnification clause",
	},
	corpus.DomainRealEstate: {
		broad:  "The listing is about real estate",
		narrow: "The listing describes a modern home",
	},
	corpus.DomainSupport: {
		broad:  "This is a support ticket",
		narrow: "The ticket is urgent and needs immediate attention",
	},
	corpus.DomainFinance: {
		broad:  "The document is an annual report",
		narrow: "The filing reports a profitable fiscal year",
	},
}

// reoptDocs builds a 48-document corpus for a domain. Biomed uses a custom
// config: the registry generator gives every relevant paper a dataset
// mention, which would make the broad (colorectal) and narrow (public
// datasets) predicates select identical sets; capping NumDatasets below
// NumRelevant keeps the narrow set a strict subset, and NumRelevant at 43
// keeps the broad filter near-universal.
func reoptDocs(t *testing.T, domain string, seed int64) []*corpus.Doc {
	t.Helper()
	if domain == corpus.DomainBiomed {
		return corpus.GenerateBiomed(corpus.BiomedConfig{
			NumPapers: 48, NumRelevant: 43, NumDatasets: 16, Seed: seed,
		})
	}
	g, err := corpus.NewGenerator(domain, 48, -1, seed)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := corpus.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

// misSeededPriors claim the broad filter (position 1) prunes almost
// everything and the narrow filter (position 2) keeps almost everything —
// the opposite of the truth — so the champion plan runs the filters in
// the costlier order until observation corrects it.
func misSeededPriors() map[int]OpEstimate {
	return map[int]OpEstimate{
		1: {Selectivity: 0.05},
		2: {Selectivity: 0.95},
	}
}

// reoptRun executes the broad→narrow filter chain over the given docs and
// returns the result plus its rendered records.
func reoptRun(t *testing.T, domain string, docs []*corpus.Doc, cfg Config, reoptAfter int) (*Result, []string) {
	t.Helper()
	cfg.EstimatePriors = misSeededPriors()
	cfg.NoCascade = true
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterDocs(domain, TextFile, docs); err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset(domain)
	if err != nil {
		t.Fatal(err)
	}
	preds := reoptPredicates[domain]
	pipeline := ds.Filter(preds.broad).Filter(preds.narrow)
	if reoptAfter > 0 {
		pipeline = pipeline.WithReopt(reoptAfter, 0)
	}
	res, err := ctx.Execute(pipeline, MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	return res, renderRecords(res.Records)
}

// TestReoptHotSwapParityProperty is the re-optimization anchor property:
// across every corpus domain and two generator seeds, a pipelined run
// whose mis-seeded priors force a hot swap must (a) actually swap
// mid-flight, (b) stay byte-identical to the never-swapped pipelined run
// and to the sequential engine, and (c) cost strictly less than the
// never-swapped run — the swap prunes earlier, it never changes answers.
// CI runs this under -race, exercising the swap protocol's concurrency.
func TestReoptHotSwapParityProperty(t *testing.T) {
	pipelined := Config{Parallelism: 4, StreamBatchSize: 8}
	for domain := range reoptPredicates {
		for _, seed := range []int64{3, 29} {
			t.Run(fmt.Sprintf("%s/seed%d", domain, seed), func(t *testing.T) {
				docs := reoptDocs(t, domain, seed)

				seqRes, seqRecs := reoptRun(t, domain, docs, Config{}, 0)
				plainRes, plainRecs := reoptRun(t, domain, docs, pipelined, 0)
				swapRes, swapRecs := reoptRun(t, domain, docs, pipelined, 2)

				if len(seqRecs) == 0 {
					t.Fatal("narrow filter kept nothing; fixture is degenerate")
				}
				if seqRes.Reopt != nil || plainRes.Reopt != nil {
					t.Fatal("re-optimization reported on runs that never enabled it")
				}
				ri := swapRes.Reopt
				if ri == nil {
					t.Fatal("re-optimizing run reported no Reopt info")
				}
				if ri.Phase != "inflight" {
					t.Fatalf("reopt phase = %q, want inflight", ri.Phase)
				}
				if !ri.Triggered || !ri.Swapped {
					t.Fatalf("mis-seeded priors did not force a swap: divergence=%.3f threshold=%.3f triggered=%t swapped=%t",
						ri.Divergence, ri.Threshold, ri.Triggered, ri.Swapped)
				}
				if ri.NewPlan == ri.OldPlan {
					t.Fatal("swap reported but the plan display did not change")
				}

				if fmt.Sprint(swapRecs) != fmt.Sprint(plainRecs) {
					t.Fatalf("hot-swapped output diverges from never-swapped pipelined run: %d vs %d records",
						len(swapRecs), len(plainRecs))
				}
				if fmt.Sprint(swapRecs) != fmt.Sprint(seqRecs) {
					t.Fatalf("hot-swapped output diverges from sequential engine: %d vs %d records",
						len(swapRecs), len(seqRecs))
				}
				if swapRes.CostUSD >= plainRes.CostUSD {
					t.Fatalf("hot swap did not cut cost: swapped $%.6f vs plain $%.6f",
						swapRes.CostUSD, plainRes.CostUSD)
				}
			})
		}
	}
}

// TestReoptSequentialPostrunCorrection: the sequential engine cannot swap
// mid-flight, so with re-optimization enabled it must fall back to the
// post-run path — divergence is still detected and the corrected plan is
// still produced (the serving layer caches it), but nothing swaps and the
// output is untouched.
func TestReoptSequentialPostrunCorrection(t *testing.T) {
	docs := reoptDocs(t, corpus.DomainSupport, 7)
	plain, plainRecs := reoptRun(t, corpus.DomainSupport, docs, Config{}, 0)
	re, reRecs := reoptRun(t, corpus.DomainSupport, docs, Config{ReoptAfterBatches: 2}, 0)

	ri := re.Reopt
	if ri == nil {
		t.Fatal("sequential re-optimizing run reported no Reopt info")
	}
	if ri.Phase != "postrun" {
		t.Fatalf("sequential reopt phase = %q, want postrun", ri.Phase)
	}
	if !ri.Triggered {
		t.Fatalf("mis-seeded priors not detected post-run: divergence=%.3f threshold=%.3f", ri.Divergence, ri.Threshold)
	}
	if ri.Swapped {
		t.Fatal("sequential engine must never hot-swap")
	}
	if ri.CorrectedPlan == nil {
		t.Fatal("post-run correction produced no corrected plan")
	}
	if fmt.Sprint(reRecs) != fmt.Sprint(plainRecs) {
		t.Fatalf("post-run correction changed output: %d vs %d records", len(reRecs), len(plainRecs))
	}
	if plain.Reopt != nil {
		t.Fatal("re-optimization reported on a run that never enabled it")
	}
}
