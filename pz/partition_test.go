package pz

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

// ticketContext registers an indexed file-backed support corpus.
func ticketContext(t *testing.T, n int, cfg Config) (*Context, *Dataset) {
	t.Helper()
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tickets.ndjson")
	g := corpus.NewSupportGenerator(corpus.SupportConfig{NumTickets: n, UrgentRate: 0.3, Seed: 19})
	if _, err := corpus.SaveNDJSON(path, g, 19, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset("tickets")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, ds
}

func renderRecords(recs []*Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		s := ""
		for _, f := range r.Schema().FieldNames() {
			s += fmt.Sprintf("%s=%q;", f, r.GetString(f))
		}
		out[i] = s
	}
	return out
}

// TestPartitionedExecutionIdentical: the same pipeline over the same
// file-backed corpus yields byte-identical records sequentially
// (Parallelism 1), pipelined single-reader, and partition-parallel —
// through the public API knobs (Config.Partitions and WithPartitions).
func TestPartitionedExecutionIdentical(t *testing.T) {
	const n = 72
	run := func(cfg Config, partitions int) []string {
		ctx, ds := ticketContext(t, n, cfg)
		if partitions != 0 {
			ds = ds.WithPartitions(partitions)
		}
		res, err := ctx.Execute(ds.Filter("The ticket is urgent and needs immediate attention"), MaxQuality())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) == 0 {
			t.Fatal("run produced no records")
		}
		return renderRecords(res.Records)
	}
	want := run(Config{}, 0)                                   // sequential engine
	viaConfig := run(Config{Parallelism: 4, Partitions: 6}, 0) // context-wide fan-out
	viaDataset := run(Config{Parallelism: 4}, 6)               // per-pipeline fan-out
	for name, got := range map[string][]string{"Config.Partitions": viaConfig, "WithPartitions": viaDataset} {
		if len(got) != len(want) {
			t.Fatalf("%s: record counts differ: %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d differs:\nsequential:  %s\npartitioned: %s", name, i, want[i], got[i])
			}
		}
	}
}

// TestWithPartitionsValidation: negative fan-outs surface as builder
// errors at Execute, like every other builder misuse.
func TestWithPartitionsValidation(t *testing.T) {
	ctx, ds := ticketContext(t, 12, Config{})
	if _, err := ctx.Execute(ds.WithPartitions(-2), MaxQuality()); err == nil {
		t.Fatal("negative fan-out accepted")
	}
}

// TestOptimizerOptionsForResolvesPartitions: the serving layer's
// fingerprint options must mirror what ExecuteContext will resolve —
// dataset override first, context default second.
func TestOptimizerOptionsForResolvesPartitions(t *testing.T) {
	ctx, ds := ticketContext(t, 12, Config{Parallelism: 2, Partitions: 4})
	if o := ctx.OptimizerOptions(); o.Partitions != 4 || !o.Pipelined {
		t.Fatalf("context options = %+v, want partitions 4, pipelined", o)
	}
	if o := ctx.OptimizerOptionsFor(ds); o.Partitions != 4 {
		t.Fatalf("default dataset options = %+v, want partitions 4", o)
	}
	if o := ctx.OptimizerOptionsFor(ds.WithPartitions(8)); o.Partitions != 8 || !o.Pipelined {
		t.Fatalf("override options = %+v, want partitions 8, pipelined", o)
	}
	if o := ctx.OptimizerOptionsFor(ds.WithPartitions(1)); o.Partitions != 1 {
		t.Fatalf("opt-out options = %+v, want partitions 1", o)
	}
}
