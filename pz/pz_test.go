package pz

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

func demoContext(t *testing.T, cfg Config) (*Context, *Dataset) {
	t.Helper()
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := ctx.RegisterDocs("sigmod-demo", PDFFile, docs); err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, ds
}

func clinicalSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := DeriveSchema("ClinicalData",
		"A schema for extracting clinical data datasets from papers.",
		[]string{"name", "description", "url"},
		[]string{"The name of the clinical data dataset",
			"A short description of the content of the dataset",
			"The public URL where the dataset can be accessed"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFigure6Pipeline(t *testing.T) {
	ctx, ds := demoContext(t, Config{})
	clinical := clinicalSchema(t)
	ds = ds.Filter("The papers are about colorectal cancer").
		Convert(clinical, clinical.Doc(), OneToMany)
	res, err := ctx.Execute(ds, MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("records = %d, want 6", len(res.Records))
	}
	if res.Elapsed < time.Minute {
		t.Errorf("elapsed = %v, implausibly fast", res.Elapsed)
	}
	if res.CostUSD <= 0 {
		t.Error("no cost recorded")
	}
	rep := res.Report(2)
	if !strings.Contains(rep, "output records: 6") || !strings.Contains(rep, "total cost") {
		t.Errorf("report = %q", rep)
	}
}

func TestBuilderDefersErrors(t *testing.T) {
	ctx, ds := demoContext(t, Config{})
	bad := ds.Filter("").Convert(nil, "", OneToOne)
	if bad.Err() == nil {
		t.Fatal("builder error not captured")
	}
	if _, err := ctx.Execute(bad, MaxQuality()); err == nil {
		t.Fatal("Execute on errored builder accepted")
	}
	// First error wins.
	if !strings.Contains(bad.Err().Error(), "predicate") {
		t.Errorf("err = %v", bad.Err())
	}
}

func TestBuilderImmutable(t *testing.T) {
	_, ds := demoContext(t, Config{})
	a := ds.Filter("about colorectal cancer")
	b := ds.Filter("about influenza")
	if a.Describe() == b.Describe() {
		t.Error("builders share state")
	}
	if len(ds.Chain()) != 1 {
		t.Errorf("base chain mutated: %d ops", len(ds.Chain()))
	}
}

func TestOutputSchema(t *testing.T) {
	_, ds := demoContext(t, Config{})
	clinical := clinicalSchema(t)
	s, err := ds.Filter("x").Convert(clinical, "d", OneToMany).OutputSchema()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ClinicalData" {
		t.Errorf("schema = %s", s.Name())
	}
	if _, err := ds.Project("no_such_field").OutputSchema(); err == nil {
		t.Error("bad projection accepted")
	}
}

func TestDescribe(t *testing.T) {
	_, ds := demoContext(t, Config{})
	d := ds.Filter("p").Limit(3).Describe()
	if !strings.Contains(d, "scan(") || !strings.Contains(d, `filter("p")`) || !strings.Contains(d, "limit(3)") {
		t.Errorf("Describe = %q", d)
	}
}

func TestPolicies(t *testing.T) {
	for _, p := range []Policy{
		MaxQuality(), MinCost(), MinTime(),
		MaxQualityAtCost(0.5), MaxQualityAtTime(120),
		MinCostAtQuality(0.8), MinTimeAtQuality(0.8),
	} {
		if p.Name() == "" || p.Describe() == "" {
			t.Errorf("policy %T incomplete", p)
		}
	}
	p, err := ParsePolicy("max quality", 0)
	if err != nil || p.Name() != "max-quality" {
		t.Errorf("ParsePolicy = %v, %v", p, err)
	}
}

func TestOptimizeOnly(t *testing.T) {
	ctx, ds := demoContext(t, Config{})
	clinical := clinicalSchema(t)
	pipeline := ds.Filter("The papers are about colorectal cancer").
		Convert(clinical, clinical.Doc(), OneToMany)
	plan, candidates, err := ctx.OptimizeOnly(pipeline, MinCost())
	if err != nil {
		t.Fatal(err)
	}
	if len(candidates) == 0 || plan == nil {
		t.Fatal("no plans")
	}
	if strings.Contains(plan.String(), "atlas-large") {
		t.Errorf("min-cost plan = %s", plan)
	}
	if ctx.TotalCost() != 0 {
		t.Errorf("OptimizeOnly without sampling charged $%.4f", ctx.TotalCost())
	}
}

func TestUsageAccumulatesAcrossRuns(t *testing.T) {
	ctx, ds := demoContext(t, Config{})
	pipeline := ds.FilterUDF("all", func(*Record) (bool, error) { return true, nil }).Limit(2)
	if _, err := ctx.Execute(pipeline, MinCost()); err != nil {
		t.Fatal(err)
	}
	clinical := clinicalSchema(t)
	p2, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Execute(p2.Limit(2).Convert(clinical, "d", OneToOne), MinCost()); err != nil {
		t.Fatal(err)
	}
	if ctx.TotalCost() <= 0 {
		t.Error("usage did not accumulate")
	}
	if !strings.Contains(ctx.UsageReport(), "cost_usd") {
		t.Error("usage report malformed")
	}
	ctx.ResetUsage()
	if ctx.TotalCost() != 0 {
		t.Error("ResetUsage failed")
	}
}

func TestRegisterDirAndDatasets(t *testing.T) {
	ctx, err := NewContext(Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	docs := corpus.GenerateLegal(corpus.LegalConfig{NumContracts: 3, IndemnificationRate: 1, Seed: 8})
	if _, err := corpus.WriteFiles(dir, docs); err != nil {
		t.Fatal(err)
	}
	src, err := ctx.RegisterDir("legal", dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Schema().Name() != "TextFile" {
		t.Errorf("schema = %s", src.Schema().Name())
	}
	if got := ctx.Datasets(); len(got) != 1 || got[0] != "legal" {
		t.Errorf("Datasets = %v", got)
	}
	if _, err := ctx.Dataset("missing"); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestRetrieveGroupBySortPipeline(t *testing.T) {
	ctx, err := NewContext(Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	docs := corpus.GenerateRealEstate(corpus.DefaultRealEstate())
	if _, err := ctx.RegisterDocs("re", TextFile, docs); err != nil {
		t.Fatal(err)
	}
	listing, err := NewSchema("Listing", "A real estate listing.",
		Field{Name: "neighborhood", Type: String, Desc: "The neighborhood"},
		Field{Name: "price", Type: Float, Desc: "The asking price"},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := ctx.Dataset("re")
	pipeline := ds.Retrieve("modern renovated kitchen", 30).
		Convert(listing, listing.Doc(), OneToOne).
		GroupBy([]string{"neighborhood"}, Avg, "price").
		Sort("value", true).
		Limit(3)
	res, err := ctx.Execute(pipeline, MinCost())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Records) > 3 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

func TestSentinelSamplingConfig(t *testing.T) {
	ctx, ds := demoContext(t, Config{SampleSize: 3, Pruning: true})
	clinical := clinicalSchema(t)
	pipeline := ds.Filter("The papers are about colorectal cancer").
		Convert(clinical, clinical.Doc(), OneToMany)
	res, err := ctx.Execute(pipeline, MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Errorf("records = %d", len(res.Records))
	}
	if res.Candidates == 0 {
		t.Error("no candidates reported")
	}
}

func TestFilterUDFZeroCost(t *testing.T) {
	ctx, ds := demoContext(t, Config{})
	pipeline := ds.FilterUDF("has_cancer_text", func(r *Record) (bool, error) {
		return strings.Contains(r.GetString("contents"), "colorectal"), nil
	})
	res, err := ctx.Execute(pipeline, MinCost())
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUSD != 0 {
		t.Errorf("UDF pipeline cost $%.4f", res.CostUSD)
	}
	if len(res.Records) == 0 {
		t.Error("UDF filtered everything")
	}
	if ds.FilterUDF("x", nil).Err() == nil {
		t.Error("nil UDF accepted")
	}
}
