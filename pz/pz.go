// Package pz is the public Palimpzest API: declarative, optimizer-backed AI
// analytics over unstructured data (paper §2.1). Users register datasets,
// compose logical pipelines with Filter/Convert and conventional relational
// operators, pick an optimization policy, and Execute — the library
// enumerates physical plans, selects one under the policy, runs it, and
// reports execution statistics.
//
// Execution is handled by internal/exec: sequential at
// Config.Parallelism <= 1, and the pipelined streaming engine otherwise —
// operator stages run concurrently over bounded channels of record
// batches (Config.StreamBatchSize), with progress reported through
// Config.OnProgress. Outputs and per-operator statistics are identical
// across both engines; only wall-clock changes. See docs/architecture.md.
//
// The package mirrors the pipeline shape of the paper's Figure 6:
//
//	ctx, _ := pz.NewContext(pz.Config{})
//	ctx.RegisterDir("sigmod-demo", "./papers")
//	ds, _ := ctx.Dataset("sigmod-demo")
//	ds = ds.Filter("The papers are about colorectal cancer")
//	clinical, _ := pz.DeriveSchema("ClinicalData",
//	    "A schema for extracting clinical data datasets from papers.",
//	    []string{"name", "description", "url"},
//	    []string{"The name of the clinical data dataset",
//	        "A short description of the content of the dataset",
//	        "The public URL where the dataset can be accessed"})
//	ds = ds.Convert(clinical, clinical.Doc(), pz.OneToMany)
//	res, _ := ctx.Execute(ds, pz.MaxQuality())
package pz

import (
	"context"
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Re-exported core types. The internal packages carry the implementations;
// these aliases are the supported public names.
type (
	// Schema describes the attributes of records (names, types, and the
	// natural-language descriptions LLM extraction uses).
	Schema = schema.Schema
	// Field is one schema attribute.
	Field = schema.Field
	// FieldType types a field.
	FieldType = schema.FieldType
	// Record is one data item flowing through a pipeline.
	Record = record.Record
	// Source is a registered dataset.
	Source = dataset.Source
	// Policy selects among physical plans.
	Policy = optimizer.Policy
	// Plan is an optimized physical plan.
	Plan = optimizer.Plan
	// Cardinality declares Convert fan-out.
	Cardinality = ops.Cardinality
	// AggFunc enumerates aggregate functions.
	AggFunc = ops.AggFunc
	// Span is one node of a query trace: per-stage (and per-partition)
	// record counts, observed selectivity, simulated time, and cost.
	Span = trace.Span
)

// Field type constants.
const (
	String     = schema.String
	Int        = schema.Int
	Float      = schema.Float
	Bool       = schema.Bool
	StringList = schema.StringList
	Bytes      = schema.Bytes
)

// Cardinality constants (paper Figure 6: pz.Cardinality.ONE_TO_MANY).
const (
	OneToOne  = ops.OneToOne
	OneToMany = ops.OneToMany
)

// Aggregate function constants.
const (
	Count = ops.AggCount
	Sum   = ops.AggSum
	Avg   = ops.AggAvg
	Min   = ops.AggMin
	Max   = ops.AggMax
)

// Built-in schemas.
var (
	// PDFFile is the native PDF schema auto-selected for .pdf datasets.
	PDFFile = schema.PDFFile
	// TextFile is the plain-text file schema.
	TextFile = schema.TextFile
	// CSVRow is the CSV row schema.
	CSVRow = schema.CSVRow
	// WebPage is the HTML page schema.
	WebPage = schema.WebPage
)

// NewSchema constructs a schema from explicit fields.
func NewSchema(name, doc string, fields ...Field) (*Schema, error) {
	return schema.New(name, doc, fields...)
}

// DeriveSchema builds a schema from parallel name/description slices — the
// dynamic schema generation of the paper's Figure 2.
func DeriveSchema(name, doc string, fieldNames, fieldDescs []string) (*Schema, error) {
	return schema.Derive(name, doc, fieldNames, fieldDescs)
}

// Policies.

// MaxQuality maximizes output quality.
func MaxQuality() Policy { return optimizer.MaxQuality{} }

// MinCost minimizes dollar cost.
func MinCost() Policy { return optimizer.MinCost{} }

// MinTime minimizes runtime.
func MinTime() Policy { return optimizer.MinTime{} }

// MaxQualityAtCost maximizes quality within a dollar budget.
func MaxQualityAtCost(budgetUSD float64) Policy {
	return optimizer.MaxQualityAtCost{BudgetUSD: budgetUSD}
}

// MaxQualityAtTime maximizes quality within a runtime cap (seconds).
func MaxQualityAtTime(capSec float64) Policy {
	return optimizer.MaxQualityAtTime{CapSec: capSec}
}

// MinCostAtQuality minimizes cost subject to a quality floor.
func MinCostAtQuality(floor float64) Policy {
	return optimizer.MinCostAtQuality{Floor: floor}
}

// MinTimeAtQuality minimizes runtime subject to a quality floor.
func MinTimeAtQuality(floor float64) Policy {
	return optimizer.MinTimeAtQuality{Floor: floor}
}

// ParsePolicy resolves a policy by name ("max quality", "min cost", ...)
// with an optional parameter for constrained policies.
func ParsePolicy(name string, param float64) (Policy, error) {
	return optimizer.ParsePolicy(name, param)
}

// Frontier returns the Pareto-optimal subset of candidate plans (non-
// dominated on cost, time, and quality).
func Frontier(plans []*Plan) []*Plan { return optimizer.Frontier(plans) }

// Config configures a Context.
type Config struct {
	// Parallelism is the maximum concurrent LLM calls per operator.
	Parallelism int
	// Partitions is the partition fan-out for partitionable scans — an
	// NDJSON corpus whose manifest carries a byte-offset partition index
	// (see docs/howto-corpus.md). When > 1 the pipelined engine runs one
	// source+map pipeline per partition, each reading its own byte range
	// of the file, and merges results back into exact dataset order, so
	// outputs stay byte-identical to a sequential scan. 0/1 keeps the
	// single streaming reader. Dataset.WithPartitions overrides per
	// pipeline.
	Partitions int
	// ClusterWorkers is the coordinator worker-pool size when this context
	// fronts cluster scatter execution (see internal/cluster): 0 means no
	// cluster. It only shapes optimization — the cost model clamps
	// partition concurrency to the pool size, and plan fingerprints
	// separate by topology — while the coordinator performs the actual
	// scatter.
	ClusterWorkers int
	// SampleSize enables sentinel calibration over that many records.
	SampleSize int
	// Pruning enables Pareto pruning during plan enumeration.
	Pruning bool
	// NoCascade disables the semantic-index cascade strategy: the
	// optimizer never calibrates or enumerates cascade-filter plans.
	NoCascade bool
	// CascadeSample is the cascade calibration sample size
	// (0 = optimizer.DefaultCascadeSample).
	CascadeSample int
	// CascadeMinRecall is the sample-positive recall the cascade prefilter
	// threshold must retain (0 = optimizer.DefaultCascadeMinRecall).
	CascadeMinRecall float64
	// ReoptAfterBatches enables adaptive mid-flight re-optimization: after
	// every re-orderable filter stage has processed this many batches, the
	// pipelined engine compares observed selectivity and cost against the
	// plan's estimates and — past ReoptDivergence — hot-swaps the
	// remaining batches onto a cheaper filter ordering. Outputs stay
	// byte-identical; only cost/time change. 0 disables (default).
	// Runs that cannot swap mid-flight (sequential, partitioned, or
	// shorter than the observation window) still fold observed statistics
	// into the corrected plan the serving plan cache keeps.
	ReoptAfterBatches int
	// ReoptDivergence is the relative estimate error that triggers a
	// re-plan (0 = optimizer.DefaultReoptDivergence).
	ReoptDivergence float64
	// EstimatePriors seeds the optimizer's per-position cost-model
	// estimates (selectivity for filters, fan-out for converts) when
	// sentinel sampling is off — the operating point re-optimization
	// recovers from when the priors turn out wrong. Keyed by logical
	// plan position; ignored when SampleSize > 0 (measured statistics
	// beat seeded priors).
	EstimatePriors map[int]OpEstimate
	// FailureRate injects transient LLM failures (testing).
	FailureRate float64
	// MaxAttempts bounds per-call LLM retries.
	MaxAttempts int
	// Backoff is the base retry backoff.
	Backoff time.Duration
	// EnableCache memoizes LLM responses across Execute calls.
	EnableCache bool
	// CacheCapacity bounds the LLM response cache to that many entries
	// (LRU eviction; 0 = unbounded). Only meaningful with EnableCache.
	CacheCapacity int
	// StreamBatchSize is the record batch size flowing between operator
	// stages of the pipelined streaming engine, which runs whenever
	// Parallelism > 1 (default 8; values below Parallelism are raised to
	// it so batches keep every stage's worker pool full).
	StreamBatchSize int
	// OnProgress, when set, receives execution progress events: one per
	// completed batch per stage (pipelined engine) or one per completed
	// operator (sequential engine). Events are serialized.
	OnProgress func(Progress)
	// TraceSink, when set, receives every completed query's span tree
	// (see Result.Trace). The callback may run concurrently with itself
	// when ExecuteContext calls overlap.
	TraceSink func(*Span)
}

// Progress is one execution progress event (see Config.OnProgress).
type Progress = exec.Progress

// OpEstimate is one seeded cost-model estimate (see Config.EstimatePriors).
type OpEstimate = optimizer.OpCalibration

// ReoptInfo summarizes a run's re-optimization check (see Result.Reopt).
type ReoptInfo = exec.ReoptInfo

// Context owns a dataset registry and an execution engine. LLM usage
// accumulates across Execute calls until ResetUsage.
type Context struct {
	cfg      Config
	registry *dataset.Registry
	executor *exec.Executor
}

// NewContext builds a Context.
func NewContext(cfg Config) (*Context, error) {
	if cfg.ClusterWorkers < 0 {
		return nil, fmt.Errorf("pz: negative cluster worker count %d", cfg.ClusterWorkers)
	}
	e, err := exec.NewExecutor(exec.Config{
		Parallelism:     cfg.Parallelism,
		Partitions:      cfg.Partitions,
		MaxAttempts:     cfg.MaxAttempts,
		Backoff:         cfg.Backoff,
		FailureRate:     cfg.FailureRate,
		EnableCache:     cfg.EnableCache,
		CacheCapacity:   cfg.CacheCapacity,
		StreamBatchSize: cfg.StreamBatchSize,
		OnProgress:      cfg.OnProgress,
		TraceSink:       cfg.TraceSink,
	})
	if err != nil {
		return nil, err
	}
	return &Context{cfg: cfg, registry: dataset.NewRegistry(), executor: e}, nil
}

// Register adds a dataset source to the context registry.
func (c *Context) Register(src Source) error { return c.registry.Register(src) }

// RegisterDir registers a local folder as a dataset; every file becomes a
// record and the schema is chosen from the dominant file extension.
func (c *Context) RegisterDir(name, dir string) (Source, error) {
	src, err := dataset.NewDirSource(name, dir)
	if err != nil {
		return nil, err
	}
	if err := c.registry.Register(src); err != nil {
		return nil, err
	}
	return src, nil
}

// RegisterNDJSON registers an on-disk NDJSON corpus file (one JSON
// document + embedded ground truth per line, manifest alongside; see
// docs/howto-corpus.md) as a dataset without loading it: the pipelined
// engine streams records from the file batch by batch, and the optimizer
// costs pipelines from the manifest statistics. Generate such files with
// cmd/pzcorpus or corpus.SaveNDJSON.
func (c *Context) RegisterNDJSON(name, path string) (Source, error) {
	src, err := dataset.NewNDJSONSource(name, path)
	if err != nil {
		return nil, err
	}
	if err := c.registry.Register(src); err != nil {
		return nil, err
	}
	return src, nil
}

// RegisterRecords registers an in-memory record collection.
func (c *Context) RegisterRecords(name string, s *Schema, recs []*Record) (Source, error) {
	src, err := dataset.NewMemSource(name, s, recs)
	if err != nil {
		return nil, err
	}
	if err := c.registry.Register(src); err != nil {
		return nil, err
	}
	return src, nil
}

// RegisterDocs registers synthetic corpus documents (keeps their hidden
// ground truth for quality measurement).
func (c *Context) RegisterDocs(name string, s *Schema, docs []*corpus.Doc) (Source, error) {
	src, err := dataset.NewDocsSource(name, s, docs)
	if err != nil {
		return nil, err
	}
	if err := c.registry.Register(src); err != nil {
		return nil, err
	}
	return src, nil
}

// Datasets lists registered dataset names.
func (c *Context) Datasets() []string { return c.registry.Names() }

// Dataset starts a pipeline over a registered dataset (paper Figure 6:
// pz.Dataset(source=..., schema=...)).
func (c *Context) Dataset(name string) (*Dataset, error) {
	src, err := c.registry.Lookup(name)
	if err != nil {
		return nil, err
	}
	return &Dataset{ctx: c, chain: []ops.Logical{&ops.Scan{Source: src}}}, nil
}

// Executor exposes the underlying engine (usage reports, virtual clock).
func (c *Context) Executor() *exec.Executor { return c.executor }

// UsageReport renders cumulative per-model LLM usage.
func (c *Context) UsageReport() string { return c.executor.Service().UsageReport() }

// TotalCost returns cumulative LLM cost across runs.
func (c *Context) TotalCost() float64 { return c.executor.Service().TotalCost() }

// ResetUsage clears cumulative LLM accounting.
func (c *Context) ResetUsage() { c.executor.Service().Reset() }

// Dataset is an immutable logical pipeline builder: every operator returns
// a new Dataset, and errors are deferred to Execute (so chains read
// cleanly, as in the paper's examples).
type Dataset struct {
	ctx   *Context
	chain []ops.Logical
	// partitions is the pipeline's requested scan fan-out (0 = the
	// Config.Partitions default; see WithPartitions).
	partitions int
	// reoptAfter and reoptDivergence are the pipeline's re-optimization
	// overrides (0 = the Config defaults; see WithReopt).
	reoptAfter      int
	reoptDivergence float64
	err             error
}

func (d *Dataset) clone() *Dataset {
	cp := *d
	return &cp
}

func (d *Dataset) extend(op ops.Logical) *Dataset {
	if d.err != nil {
		return d
	}
	chain := make([]ops.Logical, len(d.chain), len(d.chain)+1)
	copy(chain, d.chain)
	out := d.clone()
	out.chain = append(chain, op)
	return out
}

func (d *Dataset) fail(err error) *Dataset {
	if d.err != nil {
		return d
	}
	out := d.clone()
	out.err = err
	return out
}

// WithPartitions requests a partition fan-out for this pipeline's scan,
// overriding Config.Partitions: n > 1 fans a partitionable source (an
// indexed NDJSON corpus) out across n parallel range readers, n == 1
// forces the single sequential reader, n == 0 restores the Config
// default. Non-partitionable sources ignore the request and scan
// sequentially.
func (d *Dataset) WithPartitions(n int) *Dataset {
	if n < 0 {
		return d.fail(fmt.Errorf("pz: negative partition fan-out %d", n))
	}
	if d.err != nil {
		return d
	}
	out := d.clone()
	out.partitions = n
	return out
}

// WithReopt requests adaptive mid-flight re-optimization for this
// pipeline, overriding Config.ReoptAfterBatches/ReoptDivergence: the
// engine observes each re-orderable filter stage for after batches and
// hot-swaps the rest of the run onto a cheaper filter ordering when the
// observed statistics diverge from the plan's estimates by more than
// divergence (0 = optimizer.DefaultReoptDivergence). after == 0 restores
// the Config default.
func (d *Dataset) WithReopt(after int, divergence float64) *Dataset {
	if after < 0 {
		return d.fail(fmt.Errorf("pz: negative re-optimization batch window %d", after))
	}
	if divergence < 0 {
		return d.fail(fmt.Errorf("pz: negative re-optimization divergence %g", divergence))
	}
	if d.err != nil {
		return d
	}
	out := d.clone()
	out.reoptAfter = after
	out.reoptDivergence = divergence
	return out
}

// Filter keeps records satisfying a natural-language predicate.
func (d *Dataset) Filter(predicate string) *Dataset {
	if predicate == "" {
		return d.fail(fmt.Errorf("pz: empty filter predicate"))
	}
	return d.extend(&ops.Filter{Predicate: predicate})
}

// FilterUDF keeps records satisfying a Go predicate (zero LLM cost).
func (d *Dataset) FilterUDF(name string, udf func(*Record) (bool, error)) *Dataset {
	if udf == nil {
		return d.fail(fmt.Errorf("pz: nil UDF"))
	}
	return d.extend(&ops.Filter{UDF: udf, UDFName: name})
}

// Convert transforms records into the target schema, computing fields that
// do not exist on the input.
func (d *Dataset) Convert(target *Schema, desc string, card Cardinality) *Dataset {
	if target == nil {
		return d.fail(fmt.Errorf("pz: convert without target schema"))
	}
	return d.extend(&ops.Convert{Target: target, Desc: desc, Card: card})
}

// Project restricts records to the named fields.
func (d *Dataset) Project(fields ...string) *Dataset {
	return d.extend(&ops.Project{Fields: fields})
}

// Limit caps the record count.
func (d *Dataset) Limit(n int) *Dataset {
	return d.extend(&ops.Limit{N: n})
}

// Distinct removes duplicates by the named fields (all fields when empty).
func (d *Dataset) Distinct(fields ...string) *Dataset {
	return d.extend(&ops.Distinct{Fields: fields})
}

// Aggregate reduces the dataset to one record.
func (d *Dataset) Aggregate(f AggFunc, field string) *Dataset {
	return d.extend(&ops.Aggregate{Func: f, Field: field})
}

// GroupBy groups by key fields and aggregates per group.
func (d *Dataset) GroupBy(keys []string, f AggFunc, field string) *Dataset {
	return d.extend(&ops.GroupBy{Keys: keys, Func: f, Field: field})
}

// Sort orders records by a field.
func (d *Dataset) Sort(field string, descending bool) *Dataset {
	return d.extend(&ops.Sort{Field: field, Descending: descending})
}

// Retrieve keeps the top-k records most semantically similar to query.
func (d *Dataset) Retrieve(query string, k int) *Dataset {
	return d.extend(&ops.Retrieve{Query: query, K: k})
}

// Chain exposes the logical operator chain (for the chat layer and code
// generation).
func (d *Dataset) Chain() []ops.Logical {
	out := make([]ops.Logical, len(d.chain))
	copy(out, d.chain)
	return out
}

// Err returns the first builder error, if any.
func (d *Dataset) Err() error { return d.err }

// OutputSchema type-checks the pipeline and returns its output schema.
func (d *Dataset) OutputSchema() (*Schema, error) {
	if d.err != nil {
		return nil, d.err
	}
	return ops.ValidatePlan(d.chain)
}

// Describe renders the logical plan, one operator per line.
func (d *Dataset) Describe() string {
	out := ""
	for i, op := range d.chain {
		if i > 0 {
			out += "\n"
		}
		out += op.Describe()
	}
	return out
}

// Result is a completed pipeline execution.
type Result struct {
	// Records are the pipeline outputs.
	Records []*Record
	// Plan is the optimizer's chosen physical plan.
	Plan *Plan
	// Candidates is how many plans were considered.
	Candidates int
	// Elapsed is the simulated runtime.
	Elapsed time.Duration
	// CostUSD is the total LLM cost of the run.
	CostUSD float64
	// Stats exposes per-operator statistics.
	Stats *ops.RunStats
	// Trace is the query's span tree (stage, partition, and — for
	// clustered execution — worker spans). See internal/trace.
	Trace *Span
	// Reopt summarizes the run's re-optimization check (nil unless the
	// pipeline ran with ReoptAfterBatches > 0).
	Reopt *ReoptInfo

	inner *exec.Result
}

// Report renders the Figure 5-style execution panel, showing up to
// maxRecords output records.
func (r *Result) Report(maxRecords int) string { return exec.Report(r.inner, maxRecords) }

// Execute optimizes and runs the pipeline under the policy (paper Figure 6:
// records, execution_stats = Execute(output, policy)).
func (c *Context) Execute(d *Dataset, policy Policy) (*Result, error) {
	return c.ExecuteContext(context.Background(), d, policy)
}

// ExecuteContext is Execute with cancellation: canceling ctx (a timeout, a
// disconnected serving client) aborts optimization and execution between
// records and returns the context error. A Context is safe for concurrent
// ExecuteContext calls — each run accounts its own cost and elapsed time,
// while UsageReport/TotalCost keep accumulating across all of them.
func (c *Context) ExecuteContext(ctx context.Context, d *Dataset, policy Policy) (*Result, error) {
	if d == nil {
		return nil, fmt.Errorf("pz: nil dataset")
	}
	if d.err != nil {
		return nil, d.err
	}
	res, err := c.executor.ExecuteContext(ctx, d.chain, policy, optimizer.Options{
		Pruning:           c.cfg.Pruning,
		SampleSize:        c.cfg.SampleSize,
		Partitions:        d.partitions,
		ClusterWorkers:    c.cfg.ClusterWorkers,
		NoCascade:         c.cfg.NoCascade,
		CascadeSample:     c.cfg.CascadeSample,
		CascadeMinRecall:  c.cfg.CascadeMinRecall,
		ReoptAfterBatches: d.resolveReoptAfter(),
		ReoptDivergence:   d.resolveReoptDivergence(),
		Priors:            c.priors(),
	})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// ExecutePlanContext runs an already-optimized physical plan, skipping
// enumeration and selection — the fast path a serving layer takes on a
// plan-cache hit. policyDesc labels the plan's policy in reports.
func (c *Context) ExecutePlanContext(ctx context.Context, plan *Plan, policyDesc string) (*Result, error) {
	res, err := c.executor.ExecutePlanContext(ctx, plan, policyDesc)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// OptimizerOptions is the optimizer configuration derived from a Context.
type OptimizerOptions = optimizer.Options

// OptimizerOptions returns the options ExecuteContext hands the optimizer,
// with the engine choice resolved (Pipelined reflects Parallelism and the
// partition fan-out). The serving layer fingerprints queries with these so
// cached plans are only reused under identical optimization settings.
func (c *Context) OptimizerOptions() OptimizerOptions {
	return optimizer.Options{
		Pruning:           c.cfg.Pruning,
		SampleSize:        c.cfg.SampleSize,
		Partitions:        c.cfg.Partitions,
		ClusterWorkers:    c.cfg.ClusterWorkers,
		Pipelined:         c.cfg.Parallelism > 1 || c.cfg.Partitions > 1,
		NoCascade:         c.cfg.NoCascade,
		CascadeSample:     c.cfg.CascadeSample,
		CascadeMinRecall:  c.cfg.CascadeMinRecall,
		ReoptAfterBatches: c.cfg.ReoptAfterBatches,
		ReoptDivergence:   c.cfg.ReoptDivergence,
		Priors:            c.priors(),
	}
}

// priors converts Config.EstimatePriors into the optimizer's calibration
// form (nil when unset, keeping fingerprints stable for the common case).
func (c *Context) priors() optimizer.Calibration {
	if len(c.cfg.EstimatePriors) == 0 {
		return nil
	}
	out := make(optimizer.Calibration, len(c.cfg.EstimatePriors))
	for pos, est := range c.cfg.EstimatePriors {
		out[pos] = est
	}
	return out
}

// resolveReoptAfter applies the dataset's WithReopt override to the
// context default.
func (d *Dataset) resolveReoptAfter() int {
	if d.reoptAfter > 0 {
		return d.reoptAfter
	}
	return d.ctx.cfg.ReoptAfterBatches
}

// resolveReoptDivergence mirrors resolveReoptAfter for the trigger.
func (d *Dataset) resolveReoptDivergence() float64 {
	if d.reoptDivergence > 0 {
		return d.reoptDivergence
	}
	return d.ctx.cfg.ReoptDivergence
}

// OptimizerOptionsFor is OptimizerOptions with the dataset's per-pipeline
// overrides applied (WithPartitions) — the exact options ExecuteContext
// will resolve for d, which is what the serving layer must fingerprint so
// queries with different fan-outs never share a cached plan.
func (c *Context) OptimizerOptionsFor(d *Dataset) OptimizerOptions {
	o := c.OptimizerOptions()
	if d == nil {
		return o
	}
	if d.partitions != 0 {
		o.Partitions = d.partitions
		// Mirrors the executor's resolution: a per-pipeline fan-out
		// request selects the streaming model, and a context-level one
		// keeps it selected even when the pipeline opts back down to a
		// single reader.
		o.Pipelined = o.Pipelined || d.partitions > 1
	}
	o.ReoptAfterBatches = d.resolveReoptAfter()
	o.ReoptDivergence = d.resolveReoptDivergence()
	return o
}

func wrapResult(res *exec.Result) *Result {
	return &Result{
		Records:    res.Records,
		Plan:       res.Plan,
		Candidates: res.Candidates,
		Elapsed:    res.Elapsed,
		CostUSD:    res.CostUSD,
		Stats:      res.Stats,
		Trace:      res.Trace,
		Reopt:      res.Reopt,
		inner:      res,
	}
}

// OptimizeOnly runs the optimizer without executing; it returns the chosen
// plan and all candidates (used by experiments and the chat "explain"
// command).
func (c *Context) OptimizeOnly(d *Dataset, policy Policy) (*Plan, []*Plan, error) {
	if d == nil {
		return nil, nil, fmt.Errorf("pz: nil dataset")
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	opt := optimizer.New(optimizer.Options{
		Pruning:          c.cfg.Pruning,
		SampleSize:       c.cfg.SampleSize,
		NoCascade:        c.cfg.NoCascade,
		CascadeSample:    c.cfg.CascadeSample,
		CascadeMinRecall: c.cfg.CascadeMinRecall,
	})
	return opt.Optimize(d.chain, policy, c.executor.NewCtx())
}
