package pz_test

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/pz"
)

// Example reproduces the paper's Figure 6 pipeline: filter a library of
// papers for colorectal-cancer studies and extract the public datasets they
// reference, letting the optimizer pick the physical plan.
func Example() {
	ctx, err := pz.NewContext(pz.Config{})
	if err != nil {
		log.Fatal(err)
	}
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	if _, err := ctx.RegisterDocs("sigmod-demo", pz.PDFFile, docs); err != nil {
		log.Fatal(err)
	}
	clinical, err := pz.DeriveSchema("ClinicalData",
		"A schema for extracting clinical data datasets from papers.",
		[]string{"name", "description", "url"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := ctx.Dataset("sigmod-demo")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ctx.Execute(
		ds.Filter("The papers are about colorectal cancer").
			Convert(clinical, clinical.Doc(), pz.OneToMany),
		pz.MaxQuality())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d datasets from %d papers\n", len(res.Records), len(docs))
	// Output: extracted 6 datasets from 11 papers
}

// ExampleDeriveSchema shows dynamic schema generation from names and
// descriptions, as the chat agent's create_schema tool does.
func ExampleDeriveSchema() {
	s, err := pz.DeriveSchema("Author", "Author information from a paper.",
		[]string{"name", "email", "affiliation"},
		[]string{"The author's name", "The author's email", "The author's affiliation"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
	// Output: Author(name:string, email:string, affiliation:string)
}

// ExampleContext_OptimizeOnly inspects the optimizer's choice without
// running the pipeline.
func ExampleContext_OptimizeOnly() {
	ctx, _ := pz.NewContext(pz.Config{})
	docs := corpus.GenerateBiomed(corpus.PaperDemoBiomed())
	_, _ = ctx.RegisterDocs("papers", pz.PDFFile, docs)
	ds, _ := ctx.Dataset("papers")
	plan, candidates, err := ctx.OptimizeOnly(
		ds.Filter("The papers are about colorectal cancer"),
		pz.MinCost())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (of %d candidates)\n", plan, len(candidates))
	// Output: scan(papers) -> embed-filter(atlas-embed) (of 5 candidates)
}
