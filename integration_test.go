// Top-level integration tests: the paper's headline numbers, cross-run
// determinism, the full experiment harness, and the no-ground-truth path a
// conference attendee's own uploaded data takes.
package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/palimpchat"
	"repro/pz"
)

// TestPaperHeadlineNumbers asserts the §3 reproduction invariants that
// EXPERIMENTS.md records: 6 datasets from 11 papers, runtime and cost in
// the paper's magnitude, perfect extraction F1 under max quality.
func TestPaperHeadlineNumbers(t *testing.T) {
	r, err := experiments.RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if r.InputPapers != 11 || r.OutputDatasets != 6 {
		t.Errorf("papers/datasets = %d/%d, want 11/6", r.InputPapers, r.OutputDatasets)
	}
	if s := r.Runtime.Seconds(); s < 120 || s > 480 {
		t.Errorf("runtime %.0fs outside [120,480] (paper ~240s)", s)
	}
	if r.CostUSD < 0.15 || r.CostUSD > 0.70 {
		t.Errorf("cost $%.2f outside [0.15,0.70] (paper ~$0.35)", r.CostUSD)
	}
	if r.ExtractionF1 != 1.0 {
		t.Errorf("extraction F1 = %.3f, want 1.0", r.ExtractionF1)
	}
}

// TestFullRunDeterminism: two complete executions produce identical
// headline numbers (the repo's reproducibility claim).
func TestFullRunDeterminism(t *testing.T) {
	a, err := experiments.RunE1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputDatasets != b.OutputDatasets || a.CostUSD != b.CostUSD ||
		a.Runtime != b.Runtime || a.Plan != b.Plan {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// TestPolicySweepShape asserts E5's qualitative claims: the plan changes
// with the policy, quality costs money, constrained policies respect their
// budgets.
func TestPolicySweepShape(t *testing.T) {
	rows, err := experiments.RunE5()
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]experiments.E5Row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	q, c := byPolicy["max-quality"], byPolicy["min-cost"]
	if q.Plan == c.Plan {
		t.Error("policy did not change the physical plan")
	}
	if q.MeasCost <= c.MeasCost || q.ExtractionF1 <= c.ExtractionF1 {
		t.Errorf("quality/cost trade-off inverted: %+v vs %+v", q, c)
	}
	if bc := byPolicy["quality-at-cost"]; bc.MeasCost > 0.10 || bc.Violated {
		t.Errorf("cost-budget policy violated budget: %+v", bc)
	}
	if bt := byPolicy["quality-at-time"]; bt.MeasTime.Seconds() > 60 || bt.Violated {
		t.Errorf("time-cap policy exceeded cap: %+v", bt)
	}
	if fq := byPolicy["cost-at-quality"]; fq.EstQuality < 0.80 {
		t.Errorf("quality-floor policy below floor: %+v", fq)
	}
}

// TestE8ExamplesHelpRouting asserts the paper's docstring-examples claim.
func TestE8ExamplesHelpRouting(t *testing.T) {
	r, err := experiments.RunE8()
	if err != nil {
		t.Fatal(err)
	}
	if r.DocWith != r.Cases {
		t.Errorf("with examples: %d/%d", r.DocWith, r.Cases)
	}
	if r.DocWithout >= r.DocWith {
		t.Errorf("examples did not help: %d vs %d", r.DocWithout, r.DocWith)
	}
}

// TestUserUploadedDataWithoutGroundTruth exercises the fallback path: a
// folder of plain files with no sidecar annotations (what a SIGMOD
// attendee's own dataset looks like) still flows through chat, the
// optimizer, and heuristic extraction.
func TestUserUploadedDataWithoutGroundTruth(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"note1.txt": "Colorectal cancer screening notes.\nCohort data at https://example.org/cohort1 for download.",
		"note2.txt": "Gardening tips for spring.\nPlant tomatoes after the last frost.",
		"note3.txt": "A colorectal cancer trial summary.\nResults table at https://example.org/trial-results.",
	}
	for name, text := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := palimpchat.NewSession(palimpchat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{
		"load the notes from " + dir + " as mynotes",
		"filter for notes about colorectal cancer",
		"extract the dataset name, description and url",
		"run the pipeline",
	} {
		if _, err := s.Chat(u); err != nil {
			t.Fatalf("chat %q: %v", u, err)
		}
	}
	res := s.LastResult()
	if res == nil {
		t.Fatal("no result")
	}
	if len(res.Records) != 2 {
		t.Fatalf("heuristic pipeline produced %d records, want 2 (one per cancer note URL)", len(res.Records))
	}
	urls := map[string]bool{}
	for _, r := range res.Records {
		urls[r.GetString("url")] = true
	}
	if !urls["https://example.org/cohort1"] || !urls["https://example.org/trial-results"] {
		t.Errorf("heuristic extraction missed URLs: %v", urls)
	}
}

// TestExperimentsHarnessSmoke runs the remaining harness entry points so a
// regression in any experiment fails the suite, not just the benches.
func TestExperimentsHarnessSmoke(t *testing.T) {
	if r, err := experiments.RunE2(t.TempDir()); err != nil || r.OutputDatasets != 6 {
		t.Errorf("E2: %v, %+v", err, r)
	}
	if r, err := experiments.RunE3(t.TempDir()); err != nil || r.Missing != 0 {
		t.Errorf("E3: %v, missing=%d", err, r.Missing)
	}
	if r, err := experiments.RunE4Legal(); err != nil || r.Outputs == 0 {
		t.Errorf("E4 legal: %v, %+v", err, r)
	}
	if r, err := experiments.RunE4RealEstate(); err != nil || r.Outputs == 0 {
		t.Errorf("E4 real estate: %v, %+v", err, r)
	}
	rows, err := experiments.RunE6()
	if err != nil || len(rows) == 0 {
		t.Fatalf("E6: %v", err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SpaceSize <= rows[i-1].SpaceSize {
			t.Error("plan space not growing with pipeline length")
		}
		if rows[i].Pruned >= rows[i].SpaceSize {
			t.Error("pruning ineffective")
		}
	}
	e7, err := experiments.RunE7()
	if err != nil {
		t.Fatal(err)
	}
	full := e7[len(e7)-1]
	if full.SampleSize != 11 || full.EstFinalCard < 5.9 || full.EstFinalCard > 6.1 {
		t.Errorf("E7 full-sample estimate: %+v", full)
	}
	conv, err := experiments.RunAblationConvert()
	if err != nil || len(conv) != 2 || conv[1].CostUSD <= conv[0].CostUSD {
		t.Errorf("convert ablation: %v, %+v", err, conv)
	}
	pre, err := experiments.RunAblationPrefilter()
	if err != nil || len(pre) != 2 || pre[1].CostUSD >= pre[0].CostUSD {
		t.Errorf("prefilter ablation: %v, %+v", err, pre)
	}
}

// TestChatAndAPIPipelinesAgree: the chat-built pipeline and the hand-built
// pz pipeline produce the same outputs on the same corpus.
func TestChatAndAPIPipelinesAgree(t *testing.T) {
	// API path.
	ctx, ds, _, err := experiments.BiomedContext(pz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	apiRes, err := ctx.Execute(experiments.DemoPipeline(ds), pz.MaxQuality())
	if err != nil {
		t.Fatal(err)
	}
	// Chat path.
	chat, err := experiments.RunE2(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(apiRes.Records) != chat.OutputDatasets {
		t.Errorf("API %d records vs chat %d", len(apiRes.Records), chat.OutputDatasets)
	}
	apiURLs := map[string]bool{}
	for _, r := range apiRes.Records {
		apiURLs[r.GetString("url")] = true
	}
	if len(apiURLs) != 6 {
		t.Errorf("API urls = %d", len(apiURLs))
	}
	if !strings.Contains(chat.Transcript, "user>") {
		t.Error("chat transcript empty")
	}
}
