// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per paper artifact (DESIGN.md experiment index E1-E8) plus the
// ablations. Each benchmark runs the corresponding experiment and reports
// the reproduced quantities as custom metrics (records, simulated seconds,
// dollars), so `go test -bench=. -benchmem` regenerates the paper's
// numbers alongside engineering costs.
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/optimizer"
	"repro/internal/serve"
	"repro/internal/workloads"
	"repro/pz"
)

// BenchmarkE1ScientificDiscovery reproduces the §3 headline workload:
// 11 papers -> filter(colorectal cancer) -> convert(ClinicalData,
// ONE_TO_MANY) under MaxQuality. Paper: 6 datasets, ~240 s, ~$0.35.
func BenchmarkE1ScientificDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE1()
		if err != nil {
			b.Fatal(err)
		}
		if r.OutputDatasets != 6 {
			b.Fatalf("extracted %d datasets, want 6", r.OutputDatasets)
		}
		b.ReportMetric(float64(r.OutputDatasets), "datasets")
		b.ReportMetric(r.Runtime.Seconds(), "sim_s")
		b.ReportMetric(r.CostUSD, "usd")
		b.ReportMetric(r.ExtractionF1, "F1")
	}
}

// BenchmarkE2ChatPipelineConstruction reproduces the Figure 3-4 chat flow:
// the full conversation, including the compound request the agent
// decomposes into chained tool calls.
func BenchmarkE2ChatPipelineConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE2(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if r.OutputDatasets != 6 {
			b.Fatalf("chat pipeline yielded %d datasets, want 6", r.OutputDatasets)
		}
		b.ReportMetric(float64(r.DecomposedSteps), "chained_calls")
		b.ReportMetric(float64(len(r.Actions)), "tool_calls")
	}
}

// BenchmarkE3CodeGeneration reproduces the Figure 6 code export and checks
// every structural element is present.
func BenchmarkE3CodeGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE3(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if r.Missing != 0 {
			b.Fatalf("generated code missing %d Figure 6 elements", r.Missing)
		}
		b.ReportMetric(float64(len(experiments.Figure6Elements)-r.Missing), "fig6_elements")
	}
}

// BenchmarkE4LegalDiscovery runs the legal-discovery demo scenario.
func BenchmarkE4LegalDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE4Legal()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Outputs), "contracts")
		b.ReportMetric(r.CostUSD, "usd")
		b.ReportMetric(r.Runtime.Seconds(), "sim_s")
	}
}

// BenchmarkE4RealEstate runs the real-estate search demo scenario.
func BenchmarkE4RealEstate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE4RealEstate()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Outputs), "groups")
		b.ReportMetric(r.CostUSD, "usd")
		b.ReportMetric(r.Runtime.Seconds(), "sim_s")
	}
}

// BenchmarkE5PolicySweep reproduces §2.1's optimizer behaviour: the policy
// sweep across pure and constrained objectives. Reported metrics are the
// quality-vs-cost spread between the extreme policies.
func BenchmarkE5PolicySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE5()
		if err != nil {
			b.Fatal(err)
		}
		var quality, cost experiments.E5Row
		for _, r := range rows {
			switch r.Policy {
			case "max-quality":
				quality = r
			case "min-cost":
				cost = r
			}
		}
		if quality.MeasCost <= cost.MeasCost {
			b.Fatal("max-quality run not more expensive than min-cost run")
		}
		if quality.ExtractionF1 <= cost.ExtractionF1 {
			b.Fatal("max-quality run not higher F1 than min-cost run")
		}
		b.ReportMetric(quality.MeasCost/cost.MeasCost, "cost_ratio")
		b.ReportMetric(quality.ExtractionF1-cost.ExtractionF1, "F1_gap")
	}
}

// BenchmarkE6PlanEnumeration measures the physical plan-space growth and
// Pareto pruning ("a search space of all possible physical plans").
func BenchmarkE6PlanEnumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE6()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.SpaceSize), "plans")
		b.ReportMetric(float64(last.Pruned), "pareto_plans")
	}
}

// BenchmarkE7SentinelCalibration measures sample-based estimate
// sharpening: at full-sample calibration the final cardinality estimate
// must hit the true 6.
func BenchmarkE7SentinelCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE7()
		if err != nil {
			b.Fatal(err)
		}
		full := rows[len(rows)-1]
		if full.EstFinalCard < 5.9 || full.EstFinalCard > 6.1 {
			b.Fatalf("full-sample estimate %.2f, want ~6", full.EstFinalCard)
		}
		b.ReportMetric(full.EstFinalCard, "est_card")
		b.ReportMetric(full.SamplingCost, "sampling_usd")
	}
}

// BenchmarkE8ToolRouting measures docstring-driven tool selection with and
// without usage examples ("providing a few examples ... proved to be the
// most efficient solution").
func BenchmarkE8ToolRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE8()
		if err != nil {
			b.Fatal(err)
		}
		if r.DocWith <= r.DocWithout {
			b.Fatal("docstring examples did not improve similarity-only routing")
		}
		b.ReportMetric(float64(r.DocWith)/float64(r.Cases), "acc_with_examples")
		b.ReportMetric(float64(r.DocWithout)/float64(r.Cases), "acc_without")
	}
}

// BenchmarkAblationConvertStrategy compares bonded vs field-at-a-time
// conversion (DESIGN.md ablation).
func BenchmarkAblationConvertStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationConvert()
		if err != nil {
			b.Fatal(err)
		}
		bonded, fieldwise := rows[0], rows[1]
		if fieldwise.CostUSD <= bonded.CostUSD {
			b.Fatal("field-at-a-time not more expensive than bonded")
		}
		b.ReportMetric(fieldwise.CostUSD/bonded.CostUSD, "cost_ratio")
	}
}

// BenchmarkAblationPrefilter compares an LLM-only filter chain against an
// embedding pre-filter in front of it (DESIGN.md ablation).
func BenchmarkAblationPrefilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationPrefilter()
		if err != nil {
			b.Fatal(err)
		}
		plain, pre := rows[0], rows[1]
		if pre.CostUSD >= plain.CostUSD {
			b.Fatal("prefilter did not reduce cost")
		}
		b.ReportMetric(plain.CostUSD-pre.CostUSD, "usd_saved")
		b.ReportMetric(plain.F1-pre.F1, "F1_lost")
	}
}

// BenchmarkAblationParetoPruning isolates enumeration with and without
// Pareto pruning on the longest E6 pipeline.
func BenchmarkAblationParetoPruning(b *testing.B) {
	_, ds, _, err := experiments.BiomedContext(pz.Config{})
	if err != nil {
		b.Fatal(err)
	}
	clinical := experiments.ClinicalSchema()
	pipeline := ds.
		Filter("predicate one").Filter("predicate two").Filter("predicate three").
		Convert(clinical, clinical.Doc(), pz.OneToMany)
	chain := pipeline.Chain()
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := optimizer.New(optimizer.Options{}).Optimize(chain, optimizer.MaxQuality{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pareto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := optimizer.New(optimizer.Options{Pruning: true}).Optimize(chain, optimizer.MaxQuality{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9Scaling measures cost/runtime growth with library size and
// the parallel speedup (paper §1: "users face major challenges around
// runtime cost").
func BenchmarkE9Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunScale([]int{11, 44})
		if err != nil {
			b.Fatal(err)
		}
		small, big := rows[0], rows[1]
		ratio := big.CostUSD / small.CostUSD
		if ratio < 3.2 || ratio > 4.8 {
			b.Fatalf("4x corpus cost ratio = %.2f, want ~4", ratio)
		}
		if big.RuntimePar8 >= big.RuntimeSeq {
			b.Fatal("parallelism did not speed up the run")
		}
		b.ReportMetric(ratio, "cost_ratio_4x")
		b.ReportMetric(big.RuntimeSeq.Seconds()/big.RuntimePar8.Seconds(), "par_speedup")
	}
}

// BenchmarkExecEngines is the sequential-vs-pipelined executor pair: the
// same 3-LLM-operator, 100-record plan at Parallelism=8 on both engines
// (the shared internal/workloads workload the executor acceptance test
// also runs). The pipelined run also reports its speedup over the
// sequential engine (simulated clock; the acceptance bar is >= 2x).
func BenchmarkExecEngines(b *testing.B) {
	phys, err := workloads.StreamPlan(100)
	if err != nil {
		b.Fatal(err)
	}
	runOn := func(b *testing.B, run func(*exec.Executor) (*exec.Result, error)) *exec.Result {
		b.Helper()
		e, err := exec.NewExecutor(exec.Config{Parallelism: 8})
		if err != nil {
			b.Fatal(err)
		}
		res, err := run(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("benchmark workload produced no records")
		}
		return res
	}
	seq := runOn(b, func(e *exec.Executor) (*exec.Result, error) { return e.RunSequential(phys) })
	b.Run("sequential", func(b *testing.B) {
		var res *exec.Result
		for i := 0; i < b.N; i++ {
			res = runOn(b, func(e *exec.Executor) (*exec.Result, error) { return e.RunSequential(phys) })
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
	})
	b.Run("pipelined", func(b *testing.B) {
		var res *exec.Result
		for i := 0; i < b.N; i++ {
			res = runOn(b, func(e *exec.Executor) (*exec.Result, error) { return e.RunPipelined(phys) })
		}
		speedup := seq.Elapsed.Seconds() / res.Elapsed.Seconds()
		if speedup < 2 {
			b.Fatalf("pipelined speedup %.2fx < 2x (seq %v, pipe %v)", speedup, seq.Elapsed, res.Elapsed)
		}
		if len(res.Records) != len(seq.Records) {
			b.Fatalf("engines disagree: %d vs %d records", len(res.Records), len(seq.Records))
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
		b.ReportMetric(speedup, "speedup_x")
	})
}

// BenchmarkServeThroughput is the serving-layer pair: 16 synchronous
// queries pushed through pzserve's HTTP API over one shared pz.Context,
// once admission-limited to a single execution slot ("sequential") and
// once with 8 ("concurrent"). Reported metrics are wall-clock queries/sec
// and the cross-query plan-cache hits the repeat traffic earns; the CI
// smoke step records this benchmark's output as BENCH_serve.json.
func BenchmarkServeThroughput(b *testing.B) {
	const queries = 16
	specBody := func(pred string) []byte {
		data, err := json.Marshal(&serve.Spec{
			Dataset: serve.DatasetSpec{Name: workloads.StreamSourceName},
			Ops:     []serve.OpSpec{{Op: "filter", Predicate: pred}},
			Policy:  "min-cost",
		})
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	bodies := make([][]byte, len(workloads.StreamPredicates))
	for i, p := range workloads.StreamPredicates {
		bodies[i] = specBody(p)
	}

	runServe := func(b *testing.B, inflight int) {
		b.Helper()
		ctx, err := pz.NewContext(pz.Config{Parallelism: 4, EnableCache: true, CacheCapacity: 1 << 14})
		if err != nil {
			b.Fatal(err)
		}
		recs, sc, err := workloads.StreamRecords(32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.RegisterRecords(workloads.StreamSourceName, sc, recs); err != nil {
			b.Fatal(err)
		}
		srv, err := serve.New(serve.Config{Context: ctx, MaxInflight: inflight, MaxQueue: queries})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, queries)
			var wg sync.WaitGroup
			for q := 0; q < queries; q++ {
				wg.Add(1)
				go func(q int) {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/v1/query?wait=1", "application/json",
						bytes.NewReader(bodies[q%len(bodies)]))
					if err != nil {
						errs <- err
						return
					}
					defer resp.Body.Close()
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("query %d: status %d", q, resp.StatusCode)
					}
				}(q)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(queries*b.N)/secs, "queries/s")
		}
		b.ReportMetric(float64(srv.PlanCache().Stats().Hits)/float64(b.N), "plan_hits")
	}
	b.Run("sequential", func(b *testing.B) { runServe(b, 1) })
	b.Run("concurrent", func(b *testing.B) { runServe(b, 8) })
}

// BenchmarkCorpusScale runs the pipelined streaming engine over a
// 100k-document file-backed NDJSON corpus — the corpus-at-scale
// acceptance workload. The support-ticket corpus is generated once,
// spilled to disk (as `pzcorpus generate -domain support -n 100000`
// would), and registered without loading: the optimizer costs the plan
// from manifest statistics and the scan streams records from the file
// batch by batch, so memory stays bounded by the batch size at any corpus
// size. Reported metrics are real-time generation and execution
// throughput plus the run's simulated seconds and dollars; the CI smoke
// step records this benchmark's output as BENCH_corpus.json.
func BenchmarkCorpusScale(b *testing.B) {
	const docs = 100_000
	cfg := corpus.SupportConfig{NumTickets: docs, UrgentRate: 0.3, Seed: 17}
	path := filepath.Join(b.TempDir(), "support.ndjson")
	genStart := time.Now()
	if _, err := corpus.SaveNDJSON(path, corpus.NewSupportGenerator(cfg), cfg.Seed, cfg); err != nil {
		b.Fatal(err)
	}
	genSecs := time.Since(genStart).Seconds()

	b.ResetTimer()
	var res *pz.Result
	for i := 0; i < b.N; i++ {
		ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
			b.Fatal(err)
		}
		ds, err := ctx.Dataset("tickets")
		if err != nil {
			b.Fatal(err)
		}
		res, err = ctx.Execute(ds.Filter(workloads.SupportPredicate), pz.MaxQuality())
		if err != nil {
			b.Fatal(err)
		}
		// The corpus has exactly 30% urgent tickets; per-record model
		// noise moves the kept set a little, but a broken scan or filter
		// moves it a lot.
		if kept := len(res.Records); kept < docs/4 || kept > docs*35/100 {
			b.Fatalf("kept %d of %d records, want ~30%%", kept, docs)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
	}
	b.ReportMetric(docs/genSecs, "gen_docs/s")
	b.ReportMetric(float64(len(res.Records)), "records")
	b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
	b.ReportMetric(res.CostUSD, "usd")
}

// BenchmarkShardScale is the partition-parallel executor pair: the same
// filter pipeline over a 100k-document file-backed NDJSON corpus, once
// through the single-reader pipelined scan and once fanned out across
// P=8 partitions (independent byte-range readers feeding per-partition
// source+map pipelines, merged back into exact dataset order by sequence
// tags). Partitions model independent shards — each gets the configured
// per-operator parallelism — so the sharded run must beat the single
// reader by >= 2x on the simulated clock while producing byte-identical
// records; the CI smoke step records this benchmark's output as
// BENCH_shard.json.
func BenchmarkShardScale(b *testing.B) {
	const docs = 100_000
	const partitions = 8
	cfg := corpus.SupportConfig{NumTickets: docs, UrgentRate: 0.3, Seed: 29}
	path := filepath.Join(b.TempDir(), "support.ndjson")
	m, err := corpus.SaveNDJSON(path, corpus.NewSupportGenerator(cfg), cfg.Seed, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if m.Index == nil {
		b.Fatal("writer produced no partition index")
	}

	run := func(b *testing.B, parts int) *pz.Result {
		b.Helper()
		ctx, err := pz.NewContext(pz.Config{Parallelism: 8, Partitions: parts})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
			b.Fatal(err)
		}
		ds, err := ctx.Dataset("tickets")
		if err != nil {
			b.Fatal(err)
		}
		res, err := ctx.Execute(ds.Filter(workloads.SupportPredicate), pz.MaxQuality())
		if err != nil {
			b.Fatal(err)
		}
		if kept := len(res.Records); kept < docs/4 || kept > docs*35/100 {
			b.Fatalf("kept %d of %d records, want ~30%%", kept, docs)
		}
		return res
	}
	single := run(b, 1)
	singleJSON, err := serve.RecordsJSON(single.Records)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("single", func(b *testing.B) {
		var res *pz.Result
		for i := 0; i < b.N; i++ {
			res = run(b, 1)
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
	})
	b.Run("sharded", func(b *testing.B) {
		var res *pz.Result
		for i := 0; i < b.N; i++ {
			res = run(b, partitions)
		}
		b.StopTimer()
		shardJSON, err := serve.RecordsJSON(res.Records)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(shardJSON, singleJSON) {
			b.Fatalf("partitioned results are not byte-identical to the single-reader scan (%d vs %d records)",
				len(res.Records), len(single.Records))
		}
		speedup := single.Elapsed.Seconds() / res.Elapsed.Seconds()
		if speedup < 2 {
			b.Fatalf("sharded speedup %.2fx < 2x at P=%d (single %v, sharded %v)",
				speedup, partitions, single.Elapsed, res.Elapsed)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
		b.ReportMetric(speedup, "speedup_x")
	})
}

// BenchmarkClusterScale is the coordinator/worker scatter-gather pair:
// the same max-quality filter over a 100k-document indexed NDJSON corpus,
// scattered across 8 partitions once over a single in-process worker and
// once over four. Workers execute their assigned partitions serially and
// in parallel with each other, so on the simulated cluster clock the
// 4-worker scatter must approach linear scaling (>= 3x) over the single
// worker while staying byte-identical to the sequential single-process
// scan; the CI smoke step records this benchmark's output as
// BENCH_cluster.json.
func BenchmarkClusterScale(b *testing.B) {
	const docs = 100_000
	const partitions = 8
	cfg := corpus.SupportConfig{NumTickets: docs, UrgentRate: 0.3, Seed: 29}
	path := filepath.Join(b.TempDir(), "support.ndjson")
	m, err := corpus.SaveNDJSON(path, corpus.NewSupportGenerator(cfg), cfg.Seed, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if m.Index == nil {
		b.Fatal("writer produced no partition index")
	}

	newContext := func() *pz.Context {
		ctx, err := pz.NewContext(pz.Config{Parallelism: 8})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.RegisterNDJSON("tickets", path); err != nil {
			b.Fatal(err)
		}
		return ctx
	}
	spec := &serve.Spec{
		Dataset:    serve.DatasetSpec{Name: "tickets"},
		Ops:        []serve.OpSpec{{Op: "filter", Predicate: workloads.SupportPredicate}},
		Policy:     "max-quality",
		Partitions: partitions,
	}

	// Sequential single-process ground truth.
	seqCtx := newContext()
	ds, err := seqCtx.Dataset("tickets")
	if err != nil {
		b.Fatal(err)
	}
	seq, err := seqCtx.Execute(ds.Filter(workloads.SupportPredicate), pz.MaxQuality())
	if err != nil {
		b.Fatal(err)
	}
	seqJSON, err := serve.RecordsJSON(seq.Records)
	if err != nil {
		b.Fatal(err)
	}

	scatter := func(b *testing.B, workers int) *serve.DistResult {
		b.Helper()
		reg := cluster.NewRegistry(cluster.RegistryConfig{})
		for w := 0; w < workers; w++ {
			wk, err := cluster.NewWorker(cluster.WorkerConfig{
				Name: fmt.Sprintf("w%d", w), Parallelism: 8, ChunkSize: 4096,
				Datasets: map[string]string{"tickets": path},
			})
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(wk.Handler())
			b.Cleanup(srv.Close)
			if err := reg.Register(fmt.Sprintf("w%d", w), srv.URL); err != nil {
				b.Fatal(err)
			}
		}
		// Generous timeouts: the scaling measurement is on the simulated
		// clock, and wall-clock jitter must not trigger re-issues.
		coord, err := cluster.NewCoordinator(cluster.Config{
			Registry: reg, Parallelism: 8,
			PartitionTimeout: 5 * time.Minute, StragglerAfter: 5 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		dres, ok, err := coord.TryExecute(context.Background(), newContext(), spec, partitions)
		if err != nil || !ok {
			b.Fatalf("TryExecute(workers=%d): ok=%v err=%v", workers, ok, err)
		}
		got, err := serve.RecordsJSON(dres.Records)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, seqJSON) {
			b.Fatalf("scattered results (workers=%d) are not byte-identical to the sequential scan (%d vs %d records)",
				workers, len(dres.Records), len(seq.Records))
		}
		return dres
	}

	single := scatter(b, 1)
	b.Run("workers=1", func(b *testing.B) {
		var res *serve.DistResult
		for i := 0; i < b.N; i++ {
			res = scatter(b, 1)
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
	})
	b.Run("workers=4", func(b *testing.B) {
		var res *serve.DistResult
		for i := 0; i < b.N; i++ {
			res = scatter(b, 4)
		}
		b.StopTimer()
		speedup := single.Elapsed.Seconds() / res.Elapsed.Seconds()
		if speedup < 3 {
			b.Fatalf("cluster speedup %.2fx < 3x at 4 workers (1 worker %v, 4 workers %v)",
				speedup, single.Elapsed, res.Elapsed)
		}
		if res.Workers != 4 || res.Partitions != partitions {
			b.Fatalf("scatter ran on %d workers / %d partitions, want 4/%d",
				res.Workers, res.Partitions, partitions)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(docs*b.N)/secs, "docs/s")
		}
		b.ReportMetric(res.Elapsed.Seconds(), "sim_s")
		b.ReportMetric(float64(len(res.Records)), "records")
		b.ReportMetric(speedup, "speedup_x")
	})
}

// BenchmarkMicroLLMFilterCall isolates one simulated filter call.
func BenchmarkMicroLLMFilterCall(b *testing.B) {
	_, _, inputs, err := experiments.BiomedContext(pz.Config{})
	if err != nil {
		b.Fatal(err)
	}
	svc := llm.NewService()
	req := llm.Request{
		Model: "atlas-large", Task: llm.TaskFilter,
		Prompt:    "condition: x\n" + inputs[0].Text(),
		Record:    inputs[0],
		Predicate: experiments.DemoPredicate,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Complete(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroEmbed isolates one embedding call.
func BenchmarkMicroEmbed(b *testing.B) {
	_, _, inputs, err := experiments.BiomedContext(pz.Config{})
	if err != nil {
		b.Fatal(err)
	}
	text := inputs[0].Text()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = llm.EmbedVector(text)
	}
}
